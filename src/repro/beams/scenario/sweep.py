"""Ensemble sweep driver: parameter grids fanned over scenarios.

The paper's terascale context is campaign-scale: mapping an operating
envelope means running the same lattice across a grid of quad
strengths, mismatch factors, and intensities, then visualizing every
member.  :func:`run_sweep` is that driver in miniature --

- :func:`expand_axes` turns ``{"lattice.qf": [...], "mismatch": [...]}``
  into the cartesian member grid (each member a dotted-path override
  dict for :meth:`ScenarioSpec.with_overrides`);
- each member tracks its scenario (feedback loops closed) in a worker
  process via the crash-safe :func:`repro.core.executor.run_shards`,
  so a killed worker costs a retry, not the campaign;
- each member lands as a :class:`repro.core.store.ShardedStore`
  directory -- the package's render-ready on-disk format, consumable
  by the forest partitioner, the LOD builder, and the remote service
  -- plus a ``member.json`` sidecar recording its overrides and
  feedback outcome;
- the sweep itself is resumable: a member directory whose store
  manifest is committed and whose recorded overrides match is *not*
  re-run (``sweep_members_resumed`` in a trace), so re-invoking a
  killed sweep finishes only the missing members.

``sweep.json`` (schema ``repro/sweep`` v1, written atomically last) is
the campaign manifest: the spec, the axes, and every member's record.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.beams.diagnostics import rms_size
from repro.beams.distributions import X, Y
from repro.beams.scenario.spec import SCHEMA_VERSION, ScenarioSpec, _schema_check
from repro.core.atomic import atomic_write_bytes
from repro.core.checkpoint import Checkpoint
from repro.core.errors import FormatError
from repro.core.executor import run_shards
from repro.core.store import create_store, is_store_dir
from repro.core.trace import count, gauge, span

__all__ = ["expand_axes", "run_sweep", "SweepResult", "load_sweep"]

SWEEP_SCHEMA = "repro/sweep"


def expand_axes(axes: dict) -> list:
    """The cartesian member grid of a sweep's axes.

    ``axes`` maps dotted override paths (``"lattice.qf"``,
    ``"mismatch"``, ``"seed"``, ...) to value lists; the result is one
    override dict per grid point, in deterministic row-major order
    (last axis fastest), ready for
    :meth:`ScenarioSpec.with_overrides`.
    """
    if not axes:
        return [{}]
    names = list(axes)
    grids = [list(axes[n]) for n in names]
    for name, values in zip(names, grids):
        if not values:
            raise ValueError(f"sweep axis {name!r} has no values")
    return [dict(zip(names, combo)) for combo in itertools.product(*grids)]


def member_dirname(index: int) -> str:
    """Canonical member directory name (``member_0003``)."""
    return f"member_{index:04d}"


def _member_record_path(directory) -> Path:
    return Path(directory) / "member.json"


def _run_member(task: dict) -> dict:
    """Track one sweep member and land it as a store directory.

    Module-level so it pickles into worker processes.  The store
    manifest (``store.json``) commits last and ``member.json`` after
    that, so a half-written member from a killed worker fails the
    resume validity check and is simply re-run.
    """
    spec = ScenarioSpec.from_dict(task["spec"]).with_overrides(task["overrides"])
    directory = Path(task["directory"])
    scenario = spec.build()
    scenario.run()
    particles = scenario.particles
    store = create_store(
        directory,
        particles,
        shard_rows=int(task["shard_rows"]),
        step=scenario.step_index,
    )
    record = {
        "index": int(task["index"]),
        "dir": directory.name,
        "overrides": dict(task["overrides"]),
        "steps_run": int(scenario.step_index),
        "n_particles": int(store.n_particles),
        "sigma_x": float(rms_size(particles, X)),
        "sigma_y": float(rms_size(particles, Y)),
        "converged": bool(scenario.converged),
        "converged_step": max(
            (c.converged_step for c in scenario.controllers),
            key=lambda s: -1 if s is None else s,
            default=None,
        ),
        "unstable": any(c.unstable for c in scenario.controllers),
        "final_strengths": {
            name: scenario.get_strength(name) for name in scenario.knob_names()
        },
    }
    atomic_write_bytes(
        _member_record_path(directory),
        json.dumps(record, indent=2, sort_keys=True).encode(),
    )
    return record


def _completed_record(directory, overrides: dict):
    """The member's prior record iff it finished with these overrides."""
    path = _member_record_path(directory)
    if not path.is_file() or not is_store_dir(directory):
        return None
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if record.get("overrides") != overrides:
        return None
    return record


@dataclass
class SweepResult:
    """A finished (or loaded) sweep campaign.

    ``members`` holds one record dict per grid point, in grid order;
    ``resumed`` counts the members satisfied from disk instead of
    re-run.
    """

    directory: Path
    spec: ScenarioSpec
    axes: dict
    members: list = field(default_factory=list)
    resumed: int = 0

    @property
    def n_members(self) -> int:
        return len(self.members)

    @property
    def n_converged(self) -> int:
        """Members whose every controller settled inside its deadband."""
        return sum(1 for m in self.members if m.get("converged"))

    def member_dir(self, index: int) -> Path:
        """The store directory of member ``index``."""
        return Path(self.directory) / self.members[index]["dir"]

    def open_store(self, index: int):
        """Open member ``index``'s :class:`ShardedStore`."""
        from repro.core.store import ShardedStore

        return ShardedStore.open(self.member_dir(index))

    def to_dict(self) -> dict:
        return {
            "schema": SWEEP_SCHEMA,
            "version": SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "members": list(self.members),
        }

    def save(self) -> Path:
        path = Path(self.directory) / "sweep.json"
        atomic_write_bytes(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True).encode()
        )
        return path


def load_sweep(directory) -> SweepResult:
    """Open a finished sweep from its ``sweep.json`` manifest."""
    directory = Path(directory)
    path = directory / "sweep.json"
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise FormatError(f"{directory} is not a sweep directory: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FormatError(f"{path}: damaged sweep manifest ({exc})") from exc
    _schema_check(data, SWEEP_SCHEMA, "sweep manifest")
    try:
        return SweepResult(
            directory=directory,
            spec=ScenarioSpec.from_dict(data["spec"]),
            axes=dict(data["axes"]),
            members=list(data["members"]),
        )
    except (KeyError, TypeError) as exc:
        raise FormatError(f"{path}: bad sweep manifest: {exc}") from exc


def run_sweep(
    spec: ScenarioSpec,
    axes: dict,
    directory,
    workers: int = 1,
    shard_rows: int = 50_000,
    checkpoint_dir=None,
    max_retries: int = 2,
    _member_fn=None,
) -> SweepResult:
    """Fan a parameter grid over a scenario, one store per member.

    Each grid point of ``axes`` (see :func:`expand_axes`) derives a
    member spec via ``spec.with_overrides``, tracks it (feedback loops
    attached) in a worker process, and lands it as a
    :class:`~repro.core.store.ShardedStore` under
    ``directory/member_NNNN``.  Worker death is survived by
    :func:`~repro.core.executor.run_shards`; re-invoking a killed
    sweep re-runs only members without a committed store + matching
    ``member.json``.

    ``checkpoint_dir`` additionally records member completion into a
    :class:`~repro.core.checkpoint.Checkpoint` as results stream in,
    and marks the ``members`` stage done when the campaign closes.

    ``_member_fn`` is the fault-injection seam (tests wrap the member
    function in :class:`~repro.core.faults.CrashOnce`); leave it
    ``None`` for real runs.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    ckpt = Checkpoint(checkpoint_dir) if checkpoint_dir is not None else None
    grid = expand_axes(axes)
    # fail a typoed axis before any member burns CPU
    for overrides in grid:
        spec.with_overrides(overrides)
    spec_dict = spec.to_dict()

    members: list = [None] * len(grid)
    tasks = []
    for index, overrides in enumerate(grid):
        member_dir = directory / member_dirname(index)
        prior = _completed_record(member_dir, overrides)
        if prior is not None:
            members[index] = prior
            count("sweep_members_resumed")
            if ckpt is not None:
                ckpt.record_step("members", index)
            continue
        tasks.append(
            {
                "index": index,
                "overrides": overrides,
                "directory": str(member_dir),
                "spec": spec_dict,
                "shard_rows": int(shard_rows),
            }
        )

    fn = _member_fn if _member_fn is not None else _run_member

    def _record(task, record):
        if ckpt is not None:
            ckpt.record_step("members", int(record["index"]))

    resumed = len(grid) - len(tasks)
    gauge("sweep_members", len(grid))
    with span("sweep", members=len(grid), fresh=len(tasks), resumed=resumed):
        results = run_shards(
            fn,
            tasks,
            workers=workers,
            max_retries=max_retries,
            label="sweep",
            on_result=_record,
        )
    for record in results:
        members[int(record["index"])] = record
        count("sweep_members_run")

    result = SweepResult(
        directory=directory,
        spec=spec,
        axes=dict(axes),
        members=members,
        resumed=resumed,
    )
    result.save()
    if ckpt is not None:
        ckpt.mark_done("members", n_members=len(grid))
    return result
