"""Pipeline configuration dataclasses."""

import numpy as np
import pytest

from repro.beams.simulation import BeamConfig
from repro.core.config import BeamPipelineConfig, FieldLinePipelineConfig


class TestBeamPipelineConfig:
    def test_defaults_are_consistent(self):
        cfg = BeamPipelineConfig()
        assert cfg.plot_type in ("xyz", "xpxy", "xpxz", "pxpypz")
        assert 0 < cfg.threshold_percentile < 100
        assert cfg.volume_resolution > 1
        assert cfg.max_level >= 1
        assert cfg.frame_every >= 1

    def test_nested_beam_config_independent(self):
        a = BeamPipelineConfig()
        b = BeamPipelineConfig()
        a.beam.n_particles = 7
        assert b.beam.n_particles != 7  # default_factory: no shared state

    def test_custom_beam_config_carried(self):
        cfg = BeamPipelineConfig(beam=BeamConfig(n_particles=123))
        assert cfg.beam.n_particles == 123


class TestFieldLinePipelineConfig:
    def test_defaults(self):
        cfg = FieldLinePipelineConfig()
        assert cfg.field in ("E", "B")
        assert cfg.n_cells >= 1
        assert cfg.total_lines >= 1
        assert not cfg.use_solver  # analytic mode is the fast default

    def test_pipeline_honors_field_choice(self):
        """The config's field selection reaches the sampler."""
        from repro.core.pipeline import fieldline_pipeline

        res = fieldline_pipeline(
            FieldLinePipelineConfig(
                field="B", total_lines=3, n_xy=4, n_z_per_unit=3, image_size=24
            ),
            render=False,
        )
        assert res.sampler.field == "B"
        assert res.ordered.field_name == "B"

    def test_pipeline_honors_image_size(self):
        from repro.core.pipeline import fieldline_pipeline

        res = fieldline_pipeline(
            FieldLinePipelineConfig(
                total_lines=2, n_xy=4, n_z_per_unit=3, image_size=20
            ),
            render=True,
        )
        assert res.image.shape == (20, 20, 3)
        assert res.camera.width == 20
