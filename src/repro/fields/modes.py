"""Analytic cavity eigenmodes.

Closed-form TM fields used two ways: to validate the time-domain
solver, and to generate field-line data instantly (the paper's own
Figure 6 images come from "finding the eigenmodes in extremely large
and complex 3D electromagnetic structures", its companion workload).

Normalized Gaussian-like units: c = eps0 = mu0 = 1, so omega = k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import j0, j1, jn_zeros

from repro.fields.geometry import AcceleratorStructure

__all__ = ["PillboxTM010", "pillbox_tm010", "multicell_standing_wave", "MultiCellMode"]

_J0_FIRST_ZERO = float(jn_zeros(0, 1)[0])  # 2.404825...


@dataclass(frozen=True)
class PillboxTM010:
    """TM010 mode of a closed cylindrical (pillbox) cavity.

    E_z = E0 J0(k r) cos(w t),   B_phi = -E0 J1(k r) sin(w t),
    with k = j01 / R and w = k (c = 1).  The mode is z-independent.
    """

    radius: float = 1.0
    amplitude: float = 1.0

    @property
    def k(self) -> float:
        return _J0_FIRST_ZERO / self.radius

    @property
    def omega(self) -> float:
        return self.k

    @property
    def frequency(self) -> float:
        return self.omega / (2.0 * np.pi)

    def e_field(self, points: np.ndarray, t: float = 0.0) -> np.ndarray:
        p = np.atleast_2d(np.asarray(points, dtype=np.float64))
        r = np.hypot(p[:, 0], p[:, 1])
        out = np.zeros_like(p)
        out[:, 2] = self.amplitude * j0(self.k * r) * np.cos(self.omega * t)
        return out

    def b_field(self, points: np.ndarray, t: float = 0.0) -> np.ndarray:
        p = np.atleast_2d(np.asarray(points, dtype=np.float64))
        r = np.hypot(p[:, 0], p[:, 1])
        theta = np.arctan2(p[:, 1], p[:, 0])
        b_phi = -self.amplitude * j1(self.k * r) * np.sin(self.omega * t)
        out = np.zeros_like(p)
        out[:, 0] = -np.sin(theta) * b_phi
        out[:, 1] = np.cos(theta) * b_phi
        return out


def pillbox_tm010(radius: float = 1.0, amplitude: float = 1.0) -> PillboxTM010:
    """Convenience constructor for the TM010 mode."""
    return PillboxTM010(radius=radius, amplitude=amplitude)


@dataclass(frozen=True)
class MultiCellMode:
    """Approximate pi-mode standing wave of a coupled multi-cell
    structure.

    Within cell i the field is a TM010-like pattern with an axial
    sine envelope, alternating sign between neighboring cells (phase
    advance pi per cell); irises carry near-zero field.  This captures
    the qualitative structure the paper's figures show: E lines running
    axially through cell centers and bending out to the walls, B lines
    circling azimuthally, strongest where E is strongest.
    """

    structure: AcceleratorStructure
    amplitude: float = 1.0

    @property
    def omega(self) -> float:
        return _J0_FIRST_ZERO / self.structure.profile.cell_radius

    def _envelope(self, z: np.ndarray):
        """(envelope, sign) arrays over z."""
        profile = self.structure.profile
        env = np.zeros_like(z)
        sign = np.ones_like(z)
        for i in range(profile.n_cells):
            z0, z1 = profile.cell_z_range(i)
            inside = (z >= z0) & (z <= z1)
            env = np.where(
                inside, np.sin(np.pi * (z - z0) / (z1 - z0)), env
            )
            sign = np.where(inside, (-1.0) ** i, sign)
        return env, sign

    def e_field(self, points: np.ndarray, t: float = 0.0) -> np.ndarray:
        p = np.atleast_2d(np.asarray(points, dtype=np.float64))
        r = np.hypot(p[:, 0], p[:, 1])
        k = _J0_FIRST_ZERO / self.structure.profile.cell_radius
        env, sign = self._envelope(p[:, 2])
        ez = self.amplitude * sign * env * j0(k * r) * np.cos(self.omega * t)
        # radial component from div E = 0 near cell ends (qualitative):
        # Er ~ -(r/2) dEz/dz; use the envelope's derivative numerically
        denv = _envelope_derivative(self.structure.profile, p[:, 2])
        er = (
            -0.5
            * r
            * self.amplitude
            * sign
            * denv
            * j0(k * r)
            * np.cos(self.omega * t)
        )
        theta = np.arctan2(p[:, 1], p[:, 0])
        out = np.zeros_like(p)
        out[:, 0] = er * np.cos(theta)
        out[:, 1] = er * np.sin(theta)
        out[:, 2] = ez
        out[~self.structure.inside(p)] = 0.0
        return out

    def b_field(self, points: np.ndarray, t: float = 0.0) -> np.ndarray:
        p = np.atleast_2d(np.asarray(points, dtype=np.float64))
        r = np.hypot(p[:, 0], p[:, 1])
        theta = np.arctan2(p[:, 1], p[:, 0])
        k = _J0_FIRST_ZERO / self.structure.profile.cell_radius
        env, sign = self._envelope(p[:, 2])
        b_phi = -self.amplitude * sign * env * j1(k * r) * np.sin(self.omega * t)
        out = np.zeros_like(p)
        out[:, 0] = -np.sin(theta) * b_phi
        out[:, 1] = np.cos(theta) * b_phi
        out[~self.structure.inside(p)] = 0.0
        return out


def _envelope_derivative(profile, z: np.ndarray) -> np.ndarray:
    dz = 1e-6 * profile.total_length
    zp = np.clip(z + dz, 0, profile.total_length)
    zm = np.clip(z - dz, 0, profile.total_length)

    def env(zz):
        out = np.zeros_like(zz)
        for i in range(profile.n_cells):
            z0, z1 = profile.cell_z_range(i)
            inside = (zz >= z0) & (zz <= z1)
            out = np.where(inside, np.sin(np.pi * (zz - z0) / (z1 - z0)), out)
        return out

    return (env(zp) - env(zm)) / np.maximum(zp - zm, 1e-300)


def multicell_standing_wave(
    structure: AcceleratorStructure, amplitude: float = 1.0
) -> MultiCellMode:
    """Convenience constructor for the pi-mode approximation."""
    return MultiCellMode(structure=structure, amplitude=amplitude)
