"""Ensemble sweeps: grid expansion, crash survival, resume, manifests."""

import json

import pytest

from repro.beams.scenario import (
    LatticeSpec,
    ScenarioSpec,
    SweepResult,
    expand_axes,
    load_sweep,
    run_sweep,
)
from repro.beams.scenario.sweep import _run_member, member_dirname
from repro.core.checkpoint import Checkpoint
from repro.core.errors import FormatError
from repro.core.faults import CrashOnce
from repro.core.store import ShardedStore, is_store_dir
from repro.core.trace import capture


class TestExpandAxes:
    def test_cartesian_row_major(self):
        grid = expand_axes({"lattice.qf": [5.0, 6.0], "mismatch": [1.0, 1.2]})
        assert grid == [
            {"lattice.qf": 5.0, "mismatch": 1.0},
            {"lattice.qf": 5.0, "mismatch": 1.2},
            {"lattice.qf": 6.0, "mismatch": 1.0},
            {"lattice.qf": 6.0, "mismatch": 1.2},
        ]

    def test_no_axes_is_single_member(self):
        assert expand_axes({}) == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_axes({"mismatch": []})


def small_spec(**kw):
    defaults = dict(
        lattice=LatticeSpec.fodo(n_cells=4),
        n_particles=800,
        space_charge=False,
        steps=12,
    )
    defaults.update(kw)
    return ScenarioSpec(**defaults)


AXES = {"lattice.qf": [5.5, 6.0], "mismatch": [1.0, 1.2]}


class TestRunSweep:
    def test_serial_sweep_lands_stores(self, tmp_path):
        out = tmp_path / "sweep"
        result = run_sweep(small_spec(), AXES, out, workers=1)
        assert result.n_members == 4
        assert result.resumed == 0
        for i, record in enumerate(result.members):
            member_dir = out / member_dirname(i)
            assert is_store_dir(member_dir)
            assert record["dir"] == member_dirname(i)
            assert record["overrides"] == expand_axes(AXES)[i]
            assert record["steps_run"] == 12
            store = result.open_store(i)
            assert store.n_particles == 800
        # member stores really differ along the grid
        assert result.members[0]["sigma_x"] != result.members[3]["sigma_x"]

    def test_typoed_axis_fails_before_any_work(self, tmp_path):
        out = tmp_path / "sweep"
        with pytest.raises(KeyError, match="qq"):
            run_sweep(small_spec(), {"lattice.qq": [1.0]}, out)
        assert not (out / member_dirname(0)).exists()

    def test_sweep_survives_worker_crash(self, tmp_path):
        """A killed worker costs a pool rebuild and a retry, not the
        campaign -- the acceptance scenario in miniature."""
        out = tmp_path / "sweep"
        token = tmp_path / "crash.token"
        with capture(enabled=True) as tracer:
            result = run_sweep(
                small_spec(),
                AXES,
                out,
                workers=2,
                _member_fn=CrashOnce(_run_member, token),
            )
        assert result.n_members == 4
        assert all(m is not None for m in result.members)
        assert all(is_store_dir(out / member_dirname(i)) for i in range(4))
        assert tracer.counters["parallel_pool_breaks"] >= 1
        assert tracer.counters["sweep_members_run"] == 4

    def test_resume_skips_completed_members(self, tmp_path):
        out = tmp_path / "sweep"
        run_sweep(small_spec(), AXES, out)
        with capture(enabled=True) as tracer:
            again = run_sweep(small_spec(), AXES, out)
        assert again.resumed == 4
        assert tracer.counters["sweep_members_resumed"] == 4
        assert "sweep_members_run" not in tracer.counters

    def test_partial_resume_reruns_only_damage(self, tmp_path):
        out = tmp_path / "sweep"
        first = run_sweep(small_spec(), AXES, out)
        # simulate a member killed mid-write: its record is gone
        (out / member_dirname(2) / "member.json").unlink()
        again = run_sweep(small_spec(), AXES, out)
        assert again.resumed == 3
        assert again.members[2]["sigma_x"] == pytest.approx(
            first.members[2]["sigma_x"]
        )

    def test_changed_overrides_invalidate_member(self, tmp_path):
        out = tmp_path / "sweep"
        run_sweep(small_spec(), {"mismatch": [1.0]}, out)
        again = run_sweep(small_spec(), {"mismatch": [1.1]}, out)
        assert again.resumed == 0
        assert again.members[0]["overrides"] == {"mismatch": 1.1}

    def test_checkpoint_records_members(self, tmp_path):
        out = tmp_path / "sweep"
        ckpt_dir = tmp_path / "ckpt"
        run_sweep(small_spec(), AXES, out, checkpoint_dir=ckpt_dir)
        ckpt = Checkpoint(ckpt_dir)
        assert ckpt.done("members")
        assert set(ckpt.steps("members")) == {0, 1, 2, 3}

    def test_feedback_outcome_recorded(self, tmp_path):
        spec = small_spec(
            steps=None,
            lattice=LatticeSpec.fodo(n_cells=10),
            controllers=(
                {
                    "type": "envelope",
                    "knob": "qf",
                    "target": 1.07,
                    "deadband": 5.0,  # generous band: converges immediately
                    "settle": 2,
                },
            ),
        )
        result = run_sweep(spec, {"mismatch": [1.0]}, tmp_path / "sweep")
        record = result.members[0]
        assert record["converged"] is True
        assert record["converged_step"] is not None
        assert record["unstable"] is False
        assert "qf" in record["final_strengths"]
        assert result.n_converged == 1


class TestSweepManifest:
    def test_round_trip(self, tmp_path):
        out = tmp_path / "sweep"
        result = run_sweep(small_spec(), AXES, out)
        loaded = load_sweep(out)
        assert isinstance(loaded, SweepResult)
        assert loaded.spec == small_spec()
        assert loaded.axes == {k: list(v) for k, v in AXES.items()}
        assert loaded.members == result.members
        assert loaded.open_store(0).n_particles == 800

    def test_missing_manifest_is_format_error(self, tmp_path):
        with pytest.raises(FormatError, match="not a sweep directory"):
            load_sweep(tmp_path)

    def test_damaged_manifest_is_format_error(self, tmp_path):
        (tmp_path / "sweep.json").write_text("{broken")
        with pytest.raises(FormatError, match="damaged sweep manifest"):
            load_sweep(tmp_path)
        (tmp_path / "sweep.json").write_text(
            json.dumps({"schema": "repro/other", "version": 1})
        )
        with pytest.raises(FormatError, match="schema"):
            load_sweep(tmp_path)


class TestMemberStoresAreRenderable:
    def test_member_feeds_forest_partition(self, tmp_path):
        """The sweep's whole point: every member lands in the package's
        render-ready format, consumable by the downstream pipeline."""
        from repro.octree.forest import partition_forest

        result = run_sweep(small_spec(), {"mismatch": [1.0]}, tmp_path / "s")
        store = ShardedStore.open(result.member_dir(0))
        forest = partition_forest(
            store, tmp_path / "forest", bricks=2, max_level=4, capacity=64
        )
        assert forest.n_particles == 800
        assert forest.n_bricks == 8
