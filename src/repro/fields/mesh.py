"""Hexahedral mesh container and sampling.

The paper's EM code runs on unstructured hexahedral meshes; its
visualization consumes (mesh, per-vertex E/B fields).  ``HexMesh``
holds exactly that: vertices, 8-node hexahedra (VTK node ordering),
and named per-vertex vector fields.

Element volumes use the exact formula for a trilinear hexahedron
(decomposition into tetrahedra via the long diagonal); per-element
average field intensity feeds the density-proportional seeding of
paper section 3.2.  ``StructuredHexMesh`` adds the mapped-grid
structure our generators produce, enabling fast point location.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HexMesh", "StructuredHexMesh"]

# VTK_HEXAHEDRON corner offsets in reference coordinates (r, s, t) in {0,1}
_REF_CORNERS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [1, 1, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [1, 1, 1],
        [0, 1, 1],
    ],
    dtype=np.float64,
)

# decomposition of the reference hex into 6 tetrahedra sharing diagonal 0-6
_TET_DECOMPOSITION = np.array(
    [
        [0, 1, 2, 6],
        [0, 2, 3, 6],
        [0, 3, 7, 6],
        [0, 7, 4, 6],
        [0, 4, 5, 6],
        [0, 5, 1, 6],
    ]
)


class HexMesh:
    """An unstructured hexahedral mesh with per-vertex vector fields.

    Parameters
    ----------
    vertices : (V, 3) float64 positions
    hexes : (E, 8) int vertex indices, VTK node ordering
    """

    def __init__(self, vertices: np.ndarray, hexes: np.ndarray):
        self.vertices = np.ascontiguousarray(vertices, dtype=np.float64)
        self.hexes = np.ascontiguousarray(hexes, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must be (V, 3)")
        if self.hexes.ndim != 2 or self.hexes.shape[1] != 8:
            raise ValueError("hexes must be (E, 8)")
        if self.hexes.size and (
            self.hexes.min() < 0 or self.hexes.max() >= len(self.vertices)
        ):
            raise ValueError("hex vertex index out of range")
        self.vertex_fields: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_elements(self) -> int:
        return len(self.hexes)

    def set_field(self, name: str, values: np.ndarray) -> None:
        """Attach a per-vertex vector field (V, 3) or scalar field (V,)."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self.n_vertices:
            raise ValueError(f"field {name!r}: need one value per vertex")
        self.vertex_fields[name] = values

    def corner_positions(self) -> np.ndarray:
        """(E, 8, 3) positions of each element's corners."""
        return self.vertices[self.hexes]

    def element_centers(self) -> np.ndarray:
        return self.corner_positions().mean(axis=1)

    def element_volumes(self) -> np.ndarray:
        """Exact volumes of the (possibly non-convex) trilinear hexes
        via 6-tetrahedron decomposition."""
        corners = self.corner_positions()
        vol = np.zeros(self.n_elements)
        for tet in _TET_DECOMPOSITION:
            a = corners[:, tet[0]]
            b = corners[:, tet[1]]
            c = corners[:, tet[2]]
            d = corners[:, tet[3]]
            vol += np.einsum("ij,ij->i", np.cross(b - a, c - a), d - a) / 6.0
        return np.abs(vol)

    def element_field_intensity(self, name: str) -> np.ndarray:
        """Average |field| over each element's vertices -- the
        "average field intensity at the element's vertices" of the
        paper's seeding strategy."""
        f = self.vertex_fields[name]
        per_vertex = np.linalg.norm(f, axis=1) if f.ndim == 2 else np.abs(f)
        return per_vertex[self.hexes].mean(axis=1)

    def bounds(self):
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def field_nbytes(self, *names) -> int:
        """Bytes needed to store the named vertex fields for one time
        step (the raw-storage side of the paper's 25x argument)."""
        names = names or tuple(self.vertex_fields)
        return int(sum(self.vertex_fields[n].nbytes for n in names))

    # ------------------------------------------------------------------
    def locate(self, points: np.ndarray, max_newton: int = 12, tol: float = 1e-9):
        """Locate points in the mesh by Newton-inverting the trilinear map.

        Returns (element_index (N,), ref_coords (N, 3)); element -1
        marks points outside the mesh.  Candidate elements come from a
        uniform AABB bin index.  Intended for validation and moderate
        point counts; bulk field evaluation should use the samplers in
        :mod:`repro.fields.sampling`.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        idx = self._aabb_index()
        element = np.full(len(points), -1, dtype=np.int64)
        ref = np.zeros((len(points), 3))
        for i, p in enumerate(points):
            for e in idx.candidates(p):
                ok, r = self._invert_trilinear(e, p, max_newton, tol)
                if ok:
                    element[i] = e
                    ref[i] = r
                    break
        return element, ref

    def _invert_trilinear(self, e: int, p: np.ndarray, max_newton: int, tol: float):
        corners = self.vertices[self.hexes[e]]
        r = np.full(3, 0.5)
        for _ in range(max_newton):
            shape, dshape = _shape_functions(r)
            x = shape @ corners
            jac = dshape @ corners  # (3, 3): d x / d r
            err = p - x
            if np.linalg.norm(err) < tol:
                break
            try:
                delta = np.linalg.solve(jac.T, err)
            except np.linalg.LinAlgError:
                return False, r
            r = r + delta
            if np.any(np.abs(r - 0.5) > 2.0):
                return False, r
        inside = np.all((r >= -1e-9) & (r <= 1.0 + 1e-9))
        return bool(inside), np.clip(r, 0.0, 1.0)

    def sample_field(self, name: str, points: np.ndarray) -> np.ndarray:
        """Trilinear interpolation of a vertex field at points (slow
        generic path; returns zeros outside the mesh)."""
        f = self.vertex_fields[name]
        element, ref = self.locate(points)
        out_shape = (len(element),) + (f.shape[1:] if f.ndim > 1 else ())
        out = np.zeros(out_shape)
        hit = element >= 0
        if not hit.any():
            return out
        shapes = _shape_functions_batch(ref[hit])        # (M, 8)
        vals = f[self.hexes[element[hit]]]               # (M, 8, ...)
        out[hit] = np.einsum("mi,mi...->m...", shapes, vals)
        return out

    def _aabb_index(self):
        if not hasattr(self, "_aabb_cache"):
            self._aabb_cache = _AABBIndex(self)
        return self._aabb_cache


def _shape_functions(r: np.ndarray):
    """Trilinear shape functions and derivatives at one ref point."""
    rr = _REF_CORNERS
    terms = np.where(rr > 0.5, r, 1.0 - r)          # (8, 3)
    shape = terms.prod(axis=1)                      # (8,)
    sign = np.where(rr > 0.5, 1.0, -1.0)
    dshape = np.empty((3, 8))
    for a in range(3):
        others = [b for b in range(3) if b != a]
        dshape[a] = sign[:, a] * terms[:, others].prod(axis=1)
    return shape, dshape


def _shape_functions_batch(r: np.ndarray) -> np.ndarray:
    """Trilinear shape functions for (M, 3) ref points; returns (M, 8)."""
    rr = _REF_CORNERS[None]                         # (1, 8, 3)
    rb = r[:, None, :]                              # (M, 1, 3)
    terms = np.where(rr > 0.5, rb, 1.0 - rb)        # (M, 8, 3)
    return terms.prod(axis=2)


class _AABBIndex:
    """Uniform-grid index of element bounding boxes."""

    def __init__(self, mesh: HexMesh, cells_per_axis: int = 24):
        corners = mesh.corner_positions()
        self.el_lo = corners.min(axis=1)
        self.el_hi = corners.max(axis=1)
        self.lo, self.hi = mesh.bounds()
        self.n = int(cells_per_axis)
        span = np.maximum(self.hi - self.lo, 1e-300)
        self.inv_cell = self.n / span
        self.buckets: dict[tuple, list[int]] = {}
        ilo = np.clip(((self.el_lo - self.lo) * self.inv_cell).astype(int), 0, self.n - 1)
        ihi = np.clip(((self.el_hi - self.lo) * self.inv_cell).astype(int), 0, self.n - 1)
        for e in range(len(ilo)):
            for ix in range(ilo[e, 0], ihi[e, 0] + 1):
                for iy in range(ilo[e, 1], ihi[e, 1] + 1):
                    for iz in range(ilo[e, 2], ihi[e, 2] + 1):
                        self.buckets.setdefault((ix, iy, iz), []).append(e)

    def candidates(self, p: np.ndarray):
        c = ((p - self.lo) * self.inv_cell).astype(int)
        if np.any(c < 0) or np.any(c >= self.n):
            return ()
        return self.buckets.get(tuple(c), ())


class StructuredHexMesh(HexMesh):
    """A hex mesh built from a mapped structured grid.

    ``grid_shape`` is the (ni, nj, nk) *element* grid; vertex (i, j, k)
    has index ``i * (nj+1) * (nk+1) + j * (nk+1) + k``.
    """

    def __init__(self, grid_vertices: np.ndarray):
        g = np.asarray(grid_vertices, dtype=np.float64)
        if g.ndim != 4 or g.shape[3] != 3:
            raise ValueError("grid_vertices must be (ni+1, nj+1, nk+1, 3)")
        ni, nj, nk = (s - 1 for s in g.shape[:3])
        if min(ni, nj, nk) < 1:
            raise ValueError("need at least one element per axis")
        vertices = g.reshape(-1, 3)
        self.grid_shape = (ni, nj, nk)

        i, j, k = np.meshgrid(
            np.arange(ni), np.arange(nj), np.arange(nk), indexing="ij"
        )

        def vid(ii, jj, kk):
            return (ii * (nj + 1) + jj) * (nk + 1) + kk

        hexes = np.stack(
            [
                vid(i, j, k),
                vid(i + 1, j, k),
                vid(i + 1, j + 1, k),
                vid(i, j + 1, k),
                vid(i, j, k + 1),
                vid(i + 1, j, k + 1),
                vid(i + 1, j + 1, k + 1),
                vid(i, j + 1, k + 1),
            ],
            axis=-1,
        ).reshape(-1, 8)
        super().__init__(vertices, hexes)

    def element_index(self, i, j, k):
        """Flat element id of logical element (i, j, k)."""
        ni, nj, nk = self.grid_shape
        return (np.asarray(i) * nj + np.asarray(j)) * nk + np.asarray(k)
