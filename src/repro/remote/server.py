"""The data-side visualization server.

Plays the role of the machine "where [the data] was generated": it
holds partitioned frames and answers extraction requests, so only the
compact hybrid representation ever crosses the network -- the paper's
core remote-visualization argument.

The server runs in a daemon thread on localhost; tests and benches
connect a :class:`repro.remote.client.VisualizationClient` to it.
"""

from __future__ import annotations

import socket
import threading

from repro.core.trace import count, span
from repro.octree.extraction import extract
from repro.octree.partition import PartitionedFrame
from repro.remote import protocol
from repro.remote.protocol import Message, MessageType

__all__ = ["VisualizationServer"]


class VisualizationServer:
    """Serves hybrid extractions of a store of partitioned frames.

    Parameters
    ----------
    frames : list of PartitionedFrame (the partitioned store)
    bandwidth_bps : optional outgoing-bandwidth throttle emulating a
        wide-area link
    host, port : bind address; port 0 picks a free port (see
        ``address`` after ``start()``)
    """

    def __init__(
        self,
        frames,
        bandwidth_bps: float | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.frames: list[PartitionedFrame] = list(frames)
        self.bandwidth_bps = bandwidth_bps
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(4)
        self.address = self._sock.getsockname()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.stats = {"requests": 0, "bytes_sent": 0, "extractions": 0}

    # ------------------------------------------------------------------
    def start(self) -> "VisualizationServer":
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            # poke the accept loop awake
            poke = socket.create_connection(self.address, timeout=1.0)
            protocol.send_message(poke, Message(MessageType.SHUTDOWN))
            poke.close()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._sock.close()

    def __enter__(self) -> "VisualizationServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                break
            try:
                self._handle(conn)
            finally:
                conn.close()

    def _handle(self, conn) -> None:
        while True:
            try:
                msg = protocol.recv_message(conn)
            except (ConnectionError, OSError):
                return
            self.stats["requests"] += 1
            count("remote_requests")
            if msg.type == MessageType.SHUTDOWN:
                self._stop.set()
                return
            if msg.type == MessageType.LIST_FRAMES:
                payload = protocol.encode_frame_list(f.step for f in self.frames)
                self._send(conn, Message(MessageType.FRAME_LIST, payload))
            elif msg.type == MessageType.GET_HYBRID:
                index, threshold, resolution = protocol.decode_get_hybrid(msg.payload)
                if not 0 <= index < len(self.frames):
                    self._send(
                        conn,
                        Message(
                            MessageType.ERROR,
                            f"frame index {index} out of range".encode(),
                        ),
                    )
                    continue
                with span("serve_hybrid", frame=index):
                    hybrid = extract(
                        self.frames[index], threshold, volume_resolution=resolution
                    )
                    self.stats["extractions"] += 1
                    self._send(
                        conn,
                        Message(MessageType.HYBRID_FRAME, protocol.encode_hybrid(hybrid)),
                    )
            else:
                self._send(
                    conn,
                    Message(MessageType.ERROR, f"unexpected {msg.type}".encode()),
                )

    def _send(self, conn, message: Message) -> None:
        sent = protocol.send_message(
            conn, message, bandwidth_bps=self.bandwidth_bps
        )
        self.stats["bytes_sent"] += sent
        count("remote_bytes_sent", sent)
