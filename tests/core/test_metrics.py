"""Measurement helpers."""

import time

import pytest

from repro.core.metrics import Timer, fps_estimate, human_bytes, size_report


class TestHumanBytes:
    def test_units(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(5 * 1024**3) == "5 GB"
        assert human_bytes(26 * 1024**4) == "26 TB"

    def test_paper_numbers(self):
        """The paper's own arithmetic renders recognizably."""
        assert "GB" in human_bytes(100_000_000 * 48)   # 100 M particles
        assert "TB" in human_bytes(326_700 * 80e6)     # 12-cell run


class TestSizeReport:
    def test_fields(self):
        r = size_report(1000, 40, label="x")
        assert r["reduction_factor"] == pytest.approx(25.0)
        assert r["label"] == "x"

    def test_zero_reduced_safe(self):
        r = size_report(100, 0)
        assert r["reduction_factor"] == 100.0


class TestTiming:
    def test_fps_estimate(self):
        fps = fps_estimate(lambda: time.sleep(0.01), repeats=2)
        assert 10 < fps < 110

    def test_timer(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.009
