"""Vectorized field evaluation at arbitrary points.

Field-line integration evaluates the field at thousands of points per
Runge-Kutta stage; these samplers keep that fully vectorized.  Both
expose the small protocol the tracer consumes:

    sampler(points) -> (N, 3) field vectors
    sampler.inside(points) -> (N,) bool domain mask
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_staggered", "YeeSampler", "AnalyticSampler"]


def sample_staggered(
    arr: np.ndarray, origin: np.ndarray, cell: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Trilinear sampling of one staggered-grid scalar component.

    ``origin`` is the world position of sample (0, 0, 0); samples are
    spaced by ``cell``.  Points outside return 0.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    rel = (pts - origin) / cell
    shape = np.array(arr.shape)
    inside = np.all((rel >= 0.0) & (rel <= shape - 1), axis=1)
    i0 = np.clip(np.floor(rel).astype(np.int64), 0, np.maximum(shape - 2, 0))
    f = np.clip(rel - i0, 0.0, 1.0)
    out = np.zeros(len(pts))
    ix, iy, iz = i0[:, 0], i0[:, 1], i0[:, 2]
    jx = np.minimum(ix + 1, shape[0] - 1)
    jy = np.minimum(iy + 1, shape[1] - 1)
    jz = np.minimum(iz + 1, shape[2] - 1)
    fx, fy, fz = f[:, 0], f[:, 1], f[:, 2]
    out = (
        arr[ix, iy, iz] * (1 - fx) * (1 - fy) * (1 - fz)
        + arr[jx, iy, iz] * fx * (1 - fy) * (1 - fz)
        + arr[ix, jy, iz] * (1 - fx) * fy * (1 - fz)
        + arr[jx, jy, iz] * fx * fy * (1 - fz)
        + arr[ix, iy, jz] * (1 - fx) * (1 - fy) * fz
        + arr[jx, iy, jz] * fx * (1 - fy) * fz
        + arr[ix, jy, jz] * (1 - fx) * fy * fz
        + arr[jx, jy, jz] * fx * fy * fz
    )
    out[~inside] = 0.0
    return out


class YeeSampler:
    """Samples E or B from a :class:`TimeDomainSolver` snapshot.

    The sampler holds *copies* of the component arrays, so it stays
    valid (a frozen snapshot) while the solver keeps stepping -- this
    is what "storing the precomputed field lines rather than the raw
    data" operates on.
    """

    def __init__(self, solver, field: str = "E"):
        if field not in ("E", "B"):
            raise ValueError("field must be 'E' or 'B'")
        self.field = field
        self.structure = solver.structure
        names = ("ex", "ey", "ez") if field == "E" else ("hx", "hy", "hz")
        self._comps = [getattr(solver, n).copy() for n in names]
        self._origins = [solver.component_origin(n) for n in names]
        self._cell = solver.d.copy()

    def __call__(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.column_stack(
            [
                sample_staggered(c, o, self._cell, pts)
                for c, o in zip(self._comps, self._origins)
            ]
        )

    def inside(self, points: np.ndarray) -> np.ndarray:
        return self.structure.inside(points)

    def magnitude(self, points: np.ndarray) -> np.ndarray:
        return np.linalg.norm(self(points), axis=1)


class AnalyticSampler:
    """Wraps an analytic mode (or any f(points, t) pair) at fixed t."""

    def __init__(self, mode, field: str = "E", t: float = 0.0, structure=None):
        if field not in ("E", "B"):
            raise ValueError("field must be 'E' or 'B'")
        self._fn = mode.e_field if field == "E" else mode.b_field
        self.t = float(t)
        self.structure = structure or getattr(mode, "structure", None)
        self.field = field

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self._fn(points, self.t)

    def inside(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if self.structure is None:
            return np.ones(len(pts), dtype=bool)
        return self.structure.inside(pts)

    def magnitude(self, points: np.ndarray) -> np.ndarray:
        return np.linalg.norm(self(points), axis=1)
