"""Particle beam dynamics substrate.

Stands in for the parallel particle-in-cell beam dynamics codes the
paper visualizes (IMPACT, refs [10, 11]): an intense proton/H- beam
propagating through a magnetic quadrupole channel, with space charge.
The output matches the paper's data layout exactly -- each particle is
six doubles, spatial coordinates (x, y, z) and momenta (px, py, pz) --
and develops the same structure the paper's renderings show: a dense
core carrying almost all of the mass and a tenuous halo thousands of
times less dense, evolving with four-fold symmetry under alternating
focusing/defocusing quadrupoles.

Modules
-------
distributions  initial 6-D phase-space loaders (Gaussian, KV, waterbag...)
lattice        drifts, quadrupoles, FODO channel builders
transport      vectorized symplectic linear maps
spacecharge    cloud-in-cell deposition + FFT Poisson solver (PIC)
simulation     time-stepping driver writing per-step particle frames
diagnostics    rms sizes, emittances, halo parameter, density profiles
io             the 6-double-per-particle binary frame format
scenario       digital-twin layer: declarative lattice/scenario specs,
               closed-loop feedback controllers, ensemble sweep driver
"""

from repro.beams.distributions import (
    gaussian_beam,
    kv_beam,
    waterbag_beam,
    semi_gaussian_beam,
    make_distribution,
)
from repro.beams.lattice import Drift, Quadrupole, fodo_cell, fodo_channel
from repro.beams.elements import Corrector, Solenoid, ThinRFGap
from repro.beams.cavity import CavityTracker, boris_push, track_through_cavity
from repro.beams.matching import matched_sigmas, matched_twiss, phase_advance
from repro.beams.transport import track_step, transfer_matrices
from repro.beams.simulation import BeamSimulation, BeamConfig
from repro.beams.diagnostics import (
    centroid,
    rms_size,
    rms_emittance,
    halo_parameter,
    density_profile,
)
from repro.beams.scenario import (
    ElementSpec,
    LatticeSpec,
    Scenario,
    ScenarioSpec,
    run_sweep,
)
from repro.beams.io import write_frame, read_frame, frame_path, FrameWriter

__all__ = [
    "gaussian_beam",
    "kv_beam",
    "waterbag_beam",
    "semi_gaussian_beam",
    "make_distribution",
    "Drift",
    "Quadrupole",
    "fodo_cell",
    "fodo_channel",
    "Solenoid",
    "ThinRFGap",
    "Corrector",
    "CavityTracker",
    "boris_push",
    "track_through_cavity",
    "matched_sigmas",
    "matched_twiss",
    "phase_advance",
    "track_step",
    "transfer_matrices",
    "BeamSimulation",
    "BeamConfig",
    "centroid",
    "rms_size",
    "rms_emittance",
    "halo_parameter",
    "density_profile",
    "ElementSpec",
    "LatticeSpec",
    "ScenarioSpec",
    "Scenario",
    "run_sweep",
    "write_frame",
    "read_frame",
    "frame_path",
    "FrameWriter",
]
