"""The multi-tenant asyncio service: parity, coalescing, shedding,
breaker, authenticated shutdown, lifecycle.

The service must be drop-in interchangeable with the classic
:class:`VisualizationServer` for well-behaved clients (byte-identical
HYBRID_FRAME payloads on the same wire protocol) while adding the
multi-tenant machinery: shared coalescing cache, admission control,
bounded queues with BUSY shedding, per-frame circuit breaker, and a
token-authenticated SHUTDOWN.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.dataset import as_dataset
from repro.core.errors import RetryExhaustedError, ServiceBusyError
from repro.core.faults import FaultPlan
from repro.octree.extraction import extract
from repro.octree.partition import partition
from repro.remote import protocol
from repro.remote.client import VisualizationClient
from repro.remote.protocol import Message, MessageType
from repro.remote.server import VisualizationServer
from repro.remote.service import CircuitBreaker, ResultCache, VisualizationService

CLIENT_KW = dict(timeout=2.0, retries=20, backoff=0.001, backoff_max=0.02)


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(12)
    out = []
    for step in (0, 10):
        p = np.vstack(
            [rng.normal(0, 0.3, (3000, 6)), rng.normal(0, 1.5, (300, 6))]
        )
        out.append(
            partition(as_dataset(p), "xyz", max_level=5, capacity=32, step=step)
        )
    return out


def _raw_request(address, message, timeout=5.0):
    """One request/reply on a bare socket (no client-side policy)."""
    sock = socket.create_connection(address, timeout=timeout)
    try:
        protocol.send_message(sock, message)
        return protocol.recv_message(sock)
    finally:
        sock.close()


class TestParity:
    def test_hybrid_payload_byte_identical_to_old_server(self, frames):
        """Same request, same bytes: the service can replace the server
        under existing clients without any visible difference."""
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        request = Message(
            MessageType.GET_HYBRID, protocol.encode_get_hybrid(0, thr, 16)
        )
        with VisualizationServer(frames) as server:
            old = _raw_request(server.address, request)
        with VisualizationService(frames) as service:
            new = _raw_request(service.address, request)
        assert old.type == new.type == MessageType.HYBRID_FRAME
        assert old.payload == new.payload

    def test_frame_list_parity(self, frames):
        with VisualizationServer(frames) as server:
            old = _raw_request(server.address, Message(MessageType.LIST_FRAMES))
        with VisualizationService(frames) as service:
            new = _raw_request(service.address, Message(MessageType.LIST_FRAMES))
        assert old.payload == new.payload
        assert protocol.decode_frame_list(new.payload) == [0, 10]

    def test_extraction_matches_local(self, frames):
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        with VisualizationService(frames) as service:
            with VisualizationClient(service.address) as client:
                got = client.get_hybrid(0, thr, resolution=16)
        local = extract(frames[0], thr, volume_resolution=16)
        assert np.array_equal(got.points, local.points)
        assert np.array_equal(got.volume, local.volume)


class TestCoalescingCache:
    def test_repeat_requests_hit_cache(self, frames):
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        with VisualizationService(frames) as service:
            with VisualizationClient(service.address) as client:
                for _ in range(4):
                    client.get_hybrid(0, thr, resolution=8)
            assert service.stats["extractions"] == 1
            assert service.stats["cache_hits"] == 3

    def test_cache_shared_across_sessions(self, frames):
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        with VisualizationService(frames) as service:
            with VisualizationClient(service.address) as c1:
                c1.get_hybrid(0, thr, resolution=8)
            with VisualizationClient(service.address) as c2:
                c2.get_hybrid(0, thr, resolution=8)
            assert service.stats["extractions"] == 1
            assert service.stats["cache_hits"] == 1

    def test_distinct_keys_extract_separately(self, frames):
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        with VisualizationService(frames) as service:
            with VisualizationClient(service.address) as client:
                client.get_hybrid(0, thr, resolution=8)
                client.get_hybrid(0, thr, resolution=16)  # new key
                client.get_hybrid(1, thr, resolution=8)   # new key
            assert service.stats["extractions"] == 3
            assert service.stats["cache_hits"] == 0

    def test_stampede_coalesces_to_one_extraction(self, frames):
        """N concurrent sessions asking for the same cold key trigger
        exactly one extraction; the rest coalesce onto it."""
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        gate = threading.Event()

        def slow_extract(frame, threshold, resolution):
            gate.wait(timeout=5.0)
            return extract(frame, threshold, volume_resolution=resolution)

        results, errors = [], []

        def fetch(service_address):
            try:
                with VisualizationClient(service_address, timeout=10.0) as c:
                    results.append(c.get_hybrid(0, thr, resolution=8))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with VisualizationService(
            frames, extract_fn=slow_extract, request_timeout=10.0
        ) as service:
            workers = [
                threading.Thread(target=fetch, args=(service.address,))
                for _ in range(6)
            ]
            for w in workers:
                w.start()
            # let every request arrive and pile onto the in-flight key
            deadline = time.monotonic() + 5.0
            while (
                service.stats["coalesced"] < 5 and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            gate.set()
            for w in workers:
                w.join(timeout=10.0)
            assert not errors
            assert len(results) == 6
            assert service.stats["extractions"] == 1
            assert service.stats["coalesced"] == 5
        ref = results[0]
        for got in results[1:]:
            assert np.array_equal(got.volume, ref.volume)

    def test_cache_lru_is_byte_bounded(self):
        cache = ResultCache(max_bytes=100)
        cache.put("a", bytes(40))
        cache.put("b", bytes(40))
        cache.put("c", bytes(40))  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.nbytes <= 100

    def test_cache_get_refreshes_recency(self):
        cache = ResultCache(max_bytes=100)
        cache.put("a", bytes(40))
        cache.put("b", bytes(40))
        cache.get("a")             # "a" is now most recent
        cache.put("c", bytes(40))  # evicts "b", not "a"
        assert cache.get("a") is not None
        assert cache.get("b") is None


class TestAdmissionAndBackpressure:
    def test_session_limit_sheds_with_busy(self, frames):
        with VisualizationService(frames, max_sessions=1) as service:
            with VisualizationClient(service.address) as holder:
                holder.list_frames()
                shed = socket.create_connection(service.address, timeout=2.0)
                try:
                    reply = protocol.recv_message(shed)
                finally:
                    shed.close()
            assert reply.type == MessageType.BUSY
            retry_after, reason = protocol.decode_busy(reply.payload)
            assert retry_after > 0
            assert "session limit" in reason
            assert service.stats["sessions_shed"] == 1

    def test_client_backoff_honors_busy_and_recovers(self, frames):
        """A shed client retries after the hint and eventually lands
        once the occupying session leaves."""
        with VisualizationService(frames, max_sessions=1) as service:
            holder = VisualizationClient(service.address)
            holder.list_frames()

            def release():
                time.sleep(0.15)
                holder.close()

            t = threading.Thread(target=release)
            t.start()
            # admission shedding closes the connection after BUSY, so the
            # client sees a transport error and reconnects with backoff
            with VisualizationClient(
                service.address, timeout=2.0, retries=40,
                backoff=0.02, backoff_max=0.1,
            ) as client:
                assert client.list_frames() == [0, 10]
            t.join()
            assert service.stats["sessions_shed"] >= 1

    def test_queue_overflow_sheds_with_busy(self, frames):
        """Pipelining past the bounded queue gets BUSY, not unbounded
        buffering; well-formed requests still complete."""
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        gate = threading.Event()

        def slow_extract(frame, threshold, resolution):
            gate.wait(timeout=5.0)
            return extract(frame, threshold, volume_resolution=resolution)

        n_requests = 12
        with VisualizationService(
            frames, queue_depth=2, extract_fn=slow_extract,
            request_timeout=10.0,
        ) as service:
            sock = socket.create_connection(service.address, timeout=10.0)
            try:
                payload = protocol.encode_get_hybrid(0, thr, 8)
                for _ in range(n_requests):
                    protocol.send_message(
                        sock, Message(MessageType.GET_HYBRID, payload)
                    )
                # overflow replies arrive while the queue is still gated
                deadline = time.monotonic() + 5.0
                while (
                    service.stats["shed_requests"] == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                gate.set()
                types = [protocol.recv_message(sock).type for _ in range(n_requests)]
            finally:
                sock.close()
            assert types.count(MessageType.BUSY) >= 1
            assert types.count(MessageType.HYBRID_FRAME) >= 1
            assert types.count(MessageType.BUSY) == service.stats["shed_requests"]
            # accounting invariant: every request was served or shed
            assert (
                service.stats["served"] + service.stats["shed_requests"]
                == service.stats["requests"]
            )

    def test_busy_error_carries_retry_after(self):
        err = ServiceBusyError("queue full", retry_after=0.2)
        assert err.retry_after == 0.2
        assert isinstance(err, RuntimeError)


class TestCircuitBreaker:
    def test_breaker_unit(self):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0)
        assert breaker.allow("k", now=0.0)
        breaker.record_failure("k", now=0.0)
        assert breaker.allow("k", now=0.0)          # below threshold
        breaker.record_failure("k", now=0.0)
        assert not breaker.allow("k", now=1.0)      # open
        assert breaker.allow("k", now=11.0)         # half-open probe
        assert not breaker.allow("k", now=12.0)     # re-armed during probe
        breaker.record_success("k")
        assert breaker.allow("k", now=12.0)         # closed again

    def test_failing_frame_quarantined(self, frames):
        calls = {"n": 0}

        def broken_extract(frame, threshold, resolution):
            calls["n"] += 1
            raise ValueError("synthetic extraction failure")

        with VisualizationService(
            frames, extract_fn=broken_extract,
            breaker_threshold=2, breaker_cooldown=30.0,
        ) as service:
            with VisualizationClient(service.address, retries=0) as client:
                for _ in range(2):
                    with pytest.raises(RuntimeError, match="synthetic"):
                        client.get_hybrid(0, 1.0, resolution=8)
                # circuit now open: answered without attempting work
                with pytest.raises(RuntimeError, match="quarantined"):
                    client.get_hybrid(0, 1.0, resolution=8)
            assert calls["n"] == 2
            assert service.stats["extraction_errors"] == 2
            assert service.stats["quarantined"] == 1

    def test_quarantine_is_per_frame(self, frames):
        def broken_for_zero(frame, threshold, resolution):
            if frame is frames[0]:
                raise ValueError("synthetic extraction failure")
            return extract(frame, threshold, volume_resolution=resolution)

        with VisualizationService(
            frames, extract_fn=broken_for_zero,
            breaker_threshold=1, breaker_cooldown=30.0,
        ) as service:
            with VisualizationClient(service.address, retries=0) as client:
                with pytest.raises(RuntimeError, match="synthetic"):
                    client.get_hybrid(0, 1.0, resolution=8)
                with pytest.raises(RuntimeError, match="quarantined"):
                    client.get_hybrid(0, 1.0, resolution=8)
                # the healthy frame keeps serving
                good = client.get_hybrid(1, 1.0, resolution=8)
                assert good.step == 10


class TestShutdownAuthorization:
    def test_hostile_shutdown_cannot_stop_service(self, frames):
        with VisualizationService(frames) as service:
            reply = _raw_request(
                service.address, Message(MessageType.SHUTDOWN, b"die now")
            )
            assert reply.type == MessageType.ERROR
            assert b"unauthorized" in reply.payload
            # still serving afterwards
            with VisualizationClient(service.address) as client:
                assert client.list_frames() == [0, 10]
            assert service.stats["unauthorized_shutdowns"] == 1

    def test_token_shutdown_stops_service(self, frames):
        service = VisualizationService(frames).start()
        sock = socket.create_connection(service.address, timeout=2.0)
        try:
            protocol.send_message(
                sock, Message(MessageType.SHUTDOWN, service.shutdown_token)
            )
        finally:
            sock.close()
        service._thread.join(timeout=10.0)
        assert not service._thread.is_alive()
        service.stop()  # still idempotent afterwards
        with pytest.raises(OSError):
            socket.create_connection(service.address, timeout=0.5)


class TestStats:
    def test_stats_over_the_wire(self, frames):
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        with VisualizationService(frames) as service:
            with VisualizationClient(service.address) as client:
                client.get_hybrid(0, thr, resolution=8)
                client.get_hybrid(0, thr, resolution=8)
                stats = client.get_stats()
        assert stats["extractions"] == 1
        assert stats["cache_hits"] == 1
        assert stats["cache_hit_rate"] == 0.5
        assert stats["sessions_active"] == 1
        assert stats["p99_ms"] >= stats["p50_ms"] >= 0.0
        for key in ("requests", "served", "shed_requests", "bytes_sent",
                    "timeouts", "quarantined", "uptime_s"):
            assert key in stats

    def test_snapshot_without_traffic(self, frames):
        with VisualizationService(frames) as service:
            snap = service.stats_snapshot()
        assert snap["cache_hit_rate"] == 0.0
        assert snap["p50_ms"] == 0.0
        assert snap["sessions_total"] == 0


class TestLifecycle:
    def test_stop_idempotent(self, frames):
        service = VisualizationService(frames).start()
        service.stop()
        service.stop()

    def test_context_manager_cleans_up(self, frames):
        with VisualizationService(frames) as service:
            address = service.address
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)

    def test_stop_with_idle_sessions_is_fast(self, frames):
        """Idle connected clients must not hold the drain hostage."""
        with VisualizationClientHolder(frames) as (service, _):
            t0 = time.monotonic()
            service.stop()
            assert time.monotonic() - t0 < service.drain_timeout

    def test_bind_failure_raises(self, frames):
        with VisualizationService(frames) as service:
            _, port = service.address
            clash = VisualizationService(
                frames, host="127.0.0.1", port=port
            )
            # SO_REUSEADDR notwithstanding, an active listener on the
            # same port fails the second bind on Linux
            with pytest.raises(OSError):
                clash.start()
            clash.stop()

    def test_empty_store(self):
        with VisualizationService([]) as service:
            with VisualizationClient(service.address) as client:
                assert client.list_frames() == []
                with pytest.raises(RuntimeError, match="out of range"):
                    client.get_hybrid(0, 1.0)


class VisualizationClientHolder:
    """Context helper: a started service plus one idle connected client."""

    def __init__(self, frames):
        self.service = VisualizationService(frames, drain_timeout=5.0)
        self.client = None

    def __enter__(self):
        self.service.start()
        self.client = VisualizationClient(self.service.address)
        self.client.list_frames()
        return self.service, self.client

    def __exit__(self, *exc):
        if self.client is not None:
            self.client.close()
        self.service.stop()


class TestFaultedLink:
    def test_corrupt_stream_retried_transparently(self, frames):
        """The test_faults_remote acceptance pattern runs unchanged
        against the service (satellite: parity under faults)."""
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        plan = FaultPlan(seed=11, corrupt=0.25)
        with VisualizationService(frames) as service:
            with VisualizationClient(
                service.address, fault_plan=plan, **CLIENT_KW
            ) as client:
                for _ in range(60):
                    client.get_hybrid(0, thr, resolution=8)
                    if client.stats["retries"] >= 1:
                        break
                else:
                    raise AssertionError(
                        f"no retries in 60 fetches (stats={client.stats})"
                    )
                good = client.get_hybrid(0, thr, resolution=16)
        assert plan.injected.get("corrupt", 0) >= 1
        local = extract(frames[0], thr, volume_resolution=16)
        assert np.array_equal(good.points, local.points)
        assert np.array_equal(good.volume, local.volume)

    def test_vandal_does_not_kill_other_sessions(self, frames):
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        with VisualizationService(frames) as service:
            vandal = socket.create_connection(service.address, timeout=2.0)
            vandal.sendall(b"GARBAGE!" + bytes(64))
            with VisualizationClient(service.address) as client:
                h = client.get_hybrid(0, thr, resolution=8)
                assert h.n_points >= 0
            vandal.close()
            deadline = time.monotonic() + 2.0
            while (
                service.stats["protocol_errors"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert service.stats["protocol_errors"] >= 1

    def test_exhausted_retries_raise_typed_error(self, frames):
        with VisualizationService(frames, max_sessions=0) as service:
            with pytest.raises((RetryExhaustedError, OSError)):
                with VisualizationClient(
                    service.address, timeout=0.5, retries=2,
                    backoff=0.001, backoff_max=0.01,
                ) as client:
                    client.list_frames()
