"""Wire protocol for the remote visualization link.

Length-prefixed binary messages:

    u32 message type | u64 payload length | payload bytes

Payloads reuse the package's on-disk codecs (hybrid frames serialize
with :meth:`HybridFrame.save`'s layout); requests are small structs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.hybrid.representation import HybridFrame

__all__ = ["MessageType", "Message", "send_message", "recv_message",
           "encode_hybrid", "decode_hybrid"]

_FRAME_HEADER = struct.Struct("<IQ")


class MessageType(IntEnum):
    """Wire message kinds of the visualization link."""

    LIST_FRAMES = 1          # -> FRAME_LIST
    FRAME_LIST = 2           # payload: u64 count, u64 steps...
    GET_HYBRID = 3           # payload: u64 frame index, f8 threshold, u32 resolution
    HYBRID_FRAME = 4         # payload: encoded HybridFrame
    ERROR = 5                # payload: utf-8 message
    SHUTDOWN = 6


@dataclass
class Message:
    type: MessageType
    payload: bytes = b""


def send_message(sock, message: Message, bandwidth_bps: float | None = None) -> int:
    """Send a message; returns bytes sent.

    ``bandwidth_bps`` throttles by sleeping between chunks, emulating
    the wide-area link of the paper's remote setting.
    """
    import time

    data = _FRAME_HEADER.pack(int(message.type), len(message.payload)) + message.payload
    if bandwidth_bps is None:
        sock.sendall(data)
    else:
        chunk = max(int(bandwidth_bps * 0.01), 1024)  # ~10 ms per chunk
        for i in range(0, len(data), chunk):
            part = data[i : i + chunk]
            sock.sendall(part)
            time.sleep(len(part) / bandwidth_bps)
    return len(data)


def _recv_exact(sock, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        part = sock.recv(min(n - len(buf), 1 << 20))
        if not part:
            raise ConnectionError("peer closed the connection mid-message")
        buf.extend(part)
    return bytes(buf)


def recv_message(sock) -> Message:
    """Read exactly one framed message from the socket."""
    head = _recv_exact(sock, _FRAME_HEADER.size)
    mtype, length = _FRAME_HEADER.unpack(head)
    payload = _recv_exact(sock, length) if length else b""
    return Message(MessageType(mtype), payload)


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
_GET_HYBRID = struct.Struct("<QdI")
_U64 = struct.Struct("<Q")


def encode_get_hybrid(frame_index: int, threshold: float, resolution: int) -> bytes:
    return _GET_HYBRID.pack(frame_index, threshold, resolution)


def decode_get_hybrid(payload: bytes):
    return _GET_HYBRID.unpack(payload)


def encode_frame_list(steps) -> bytes:
    arr = np.asarray(list(steps), dtype="<u8")
    return _U64.pack(len(arr)) + arr.tobytes()


def decode_frame_list(payload: bytes):
    (count,) = _U64.unpack_from(payload, 0)
    return np.frombuffer(payload, dtype="<u8", count=count, offset=_U64.size).tolist()


def encode_hybrid(frame: HybridFrame) -> bytes:
    """Serialize a hybrid frame using its file layout."""
    return frame.to_bytes()


def decode_hybrid(payload: bytes) -> HybridFrame:
    """Deserialize a hybrid frame received on the wire."""
    return HybridFrame.from_bytes(payload, source="<wire>")
