"""PERF -- the out-of-core sharded store vs the in-core pipeline.

Two measurements for the streaming hybrid pipeline introduced with
``repro.core.store`` / ``repro.octree.stream_partition``:

* *rss*: a 10^7-particle synthetic beam (480 MB of raw float64, scaled
  by ``REPRO_SCALE``) is written as a sharded store and pushed through
  the full hybrid pipeline -- two-pass streamed partition, shard-wise
  extraction, batched point rendering -- in a **subprocess**, whose
  ``VmHWM`` (reset at exec, unlike ``ru_maxrss`` which inherits the
  parent's fork-time pages) is the honest peak-RSS of the whole run.  The
  acceptance floor is peak RSS below *half* the raw dataset size; the
  in-core path needs several multiples of it.
* *equivalence*: at 10^5 particles the same frame runs both pipelines
  end to end; halo points and node tables must match bit for bit and
  the rendered images within 1 ULP per float32 channel.

Writes ``BENCH_sharded_store.json``; ``scripts/check.sh --store``
gates on the recorded fraction and flags (scripts/perf_gate.py
--store).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from common import record, record_bench, scaled, traced_run

from repro.core.store import create_store
from repro.hybrid.renderer import HybridRenderer
from repro.octree.extraction import extract
from repro.octree.partition import partition
from repro.octree.stream_partition import partition_store
from repro.render.camera import Camera

N_PARTICLES_RSS = scaled(10_000_000)
N_PARTICLES_EQ = scaled(100_000)
SHARD_ROWS = 262_144
GEN_BLOCK = 1_000_000


def _beam_blocks(n, seed=12, block=GEN_BLOCK):
    """Yield a dense-core + sparse-halo beam frame block by block, so
    the parent never holds the 10^7-row array."""
    rng = np.random.default_rng(seed)
    remaining = n
    while remaining > 0:
        m = min(block, remaining)
        rows = rng.normal(0.0, 0.3, (m, 6))
        n_halo = m // 16
        rows[:n_halo] = rng.normal(0.0, 2.0, (n_halo, 6))
        yield rows
        remaining -= m


# Runs in a fresh interpreter: store -> streamed partition -> extract ->
# batched render, then reports its own peak RSS as JSON on stdout.
_CHILD = r"""
import json, sys
import numpy as np
from repro.core.dataset import open_dataset
from repro.core.trace import capture, gauge_peak_rss
from repro.hybrid.renderer import HybridRenderer
from repro.octree.extraction import extract
from repro.octree.stream_partition import partition_store
from repro.render.camera import Camera

store_dir, out_dir, res = sys.argv[1], sys.argv[2], int(sys.argv[3])
with capture(enabled=True) as tracer:
    ps = partition_store(
        open_dataset(store_dir), out_dir, "xyz", max_level=6, capacity=4096
    )
    threshold = float(np.percentile(ps.nodes["density"], 20))
    hybrid = extract(ps, threshold, volume_resolution=res)
    camera = Camera.fit_bounds(hybrid.lo, hybrid.hi, width=160, height=160)
    fb = HybridRenderer(n_slices=24, point_batch_size=500_000).render(
        hybrid, camera=camera
    )
# VmHWM via gauge_peak_rss: ru_maxrss would carry the fat parent's
# copy-on-write pages across fork() and overstate this child's peak.
print(json.dumps({
    "peak_rss_bytes": int(gauge_peak_rss()),
    "n_points": int(hybrid.n_points),
    "n_nodes": int(ps.n_nodes),
    "image_sum": float(fb.rgba.sum()),
}))
"""


def _run_child(store_dir, out_dir, res=64) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    old = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + old if old else "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(store_dir), str(out_dir), str(res)],
        capture_output=True, text=True, env=env, check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"pipeline child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _equivalence(tmp, n) -> dict:
    """Both pipelines end to end on one frame; bitwise/1-ULP checks."""
    particles = np.concatenate(list(_beam_blocks(n, seed=3)))
    from repro.core.dataset import as_dataset

    pf = partition(as_dataset(particles), "xyz", max_level=6, capacity=64)
    store = create_store(tmp / "eq_store", particles, shard_rows=16_384)
    ps = partition_store(store, tmp / "eq_part", "xyz", max_level=6, capacity=64)

    threshold = float(np.percentile(pf.nodes["density"], 60))
    a = extract(pf, threshold, volume_resolution=48)
    b = extract(ps, threshold, volume_resolution=48)
    camera = Camera.fit_bounds(a.lo, a.hi, width=192, height=192)
    img_a = HybridRenderer(n_slices=48).render(a, camera=camera)
    img_b = HybridRenderer(n_slices=48, point_batch_size=10_000).render(
        b, camera=camera
    )
    vol_ulp = int(
        np.max(
            np.abs(
                a.volume.view(np.int32).astype(np.int64)
                - b.volume.view(np.int32).astype(np.int64)
            )
        )
    )
    img_ulp = int(
        np.max(
            np.abs(
                img_a.rgba.astype(np.float32).view(np.int32).astype(np.int64)
                - img_b.rgba.astype(np.float32).view(np.int32).astype(np.int64)
            )
        )
    )
    return {
        "n_particles": int(n),
        "nodes_bitwise": bool(np.array_equal(pf.nodes, ps.nodes)),
        "particles_bitwise": bool(
            np.array_equal(pf.particles, ps.store.to_array())
        ),
        "points_bitwise": bool(np.array_equal(a.points, b.points)),
        "volume_max_ulp": vol_ulp,
        "image_max_ulp": img_ulp,
    }


def test_sharded_store_report(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("sharded_store")
    results = {}

    def measure():
        # -- rss: the full pipeline in a measured subprocess ------------
        raw_bytes = N_PARTICLES_RSS * 48
        t0 = time.perf_counter()
        store = create_store(
            tmp / "store", _beam_blocks(N_PARTICLES_RSS), shard_rows=SHARD_ROWS
        )
        t_store = time.perf_counter() - t0
        t0 = time.perf_counter()
        child = _run_child(tmp / "store", tmp / "part")
        t_pipeline = time.perf_counter() - t0
        results["store"] = {
            "n_particles": int(N_PARTICLES_RSS),
            "raw_mb": raw_bytes / 1e6,
            "n_shards": int(store.n_shards),
            "t_store_s": t_store,
            "t_pipeline_s": t_pipeline,
            "peak_rss_mb": child["peak_rss_bytes"] / 1e6,
            "rss_fraction": child["peak_rss_bytes"] / raw_bytes,
            "n_points": child["n_points"],
            "n_nodes": child["n_nodes"],
        }

        # -- equivalence: streamed == in-core ---------------------------
        results["equivalence"] = _equivalence(tmp, N_PARTICLES_EQ)

    tracer = traced_run(measure)
    record_bench("sharded_store", tracer, extra=results)

    s, e = results["store"], results["equivalence"]
    record(
        "PERF-SHARDED-STORE",
        [
            f"rss: {s['n_particles']} particles ({s['raw_mb']:.0f} MB raw), "
            f"{s['n_shards']} shards:",
            f"  store build {s['t_store_s']:.1f} s, full streamed pipeline "
            f"{s['t_pipeline_s']:.1f} s",
            f"  peak RSS {s['peak_rss_mb']:.0f} MB = {s['rss_fraction']:.2f} "
            f"of raw (floor: < 0.50)",
            f"equivalence at {e['n_particles']} particles: nodes bitwise "
            f"{e['nodes_bitwise']}, particles bitwise {e['particles_bitwise']}, "
            f"points bitwise {e['points_bitwise']}",
            f"  volume max ULP {e['volume_max_ulp']}, "
            f"image max ULP {e['image_max_ulp']} (floor: <= 1)",
        ],
    )

    # the PR's acceptance floors
    assert s["rss_fraction"] < 0.5
    assert e["nodes_bitwise"] and e["particles_bitwise"] and e["points_bitwise"]
    assert e["volume_max_ulp"] <= 1
    assert e["image_max_ulp"] <= 1
