"""Chaos load: a seeded client fleet (5% misbehaving) vs the service.

A reduced-scale rehearsal of the acceptance run in
``benchmarks/bench_service.py`` (which drives 1000 clients): the
service must survive the whole fleet, serve or explicitly shed every
well-behaved client, keep queues bounded, and coalesce the hot set
into a >0.5 cache hit rate.
"""

import numpy as np
import pytest

from repro.core.dataset import as_dataset
from repro.octree.partition import partition
from repro.remote.client import VisualizationClient
from repro.remote.loadgen import ChaosSchedule, assign_roles, run_fleet
from repro.remote.service import VisualizationService

N_CLIENTS = 150
FAULT_FRACTION = 0.05


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(31)
    out = []
    for step in range(10):  # the 10-frame hot set
        p = rng.normal(0, 0.5, (1500, 6))
        out.append(
            partition(as_dataset(p), "xyz", max_level=4, capacity=64, step=step)
        )
    return out


class TestRoleAssignment:
    def test_seeded_roles_reproducible(self):
        sched = ChaosSchedule(threshold=0.0, seed=9, n_clients=200,
                              fault_fraction=0.05)
        assert assign_roles(sched) == assign_roles(sched)

    def test_fault_fraction_respected(self):
        sched = ChaosSchedule(threshold=0.0, seed=9, n_clients=200,
                              fault_fraction=0.05)
        roles = assign_roles(sched)
        bad = [r for r in roles if r != "good"]
        assert len(bad) == 10
        # all four chaos roles are represented
        assert {"slowloris", "disconnect", "corrupt", "flood"} <= set(bad)

    def test_different_seed_different_order(self):
        a = ChaosSchedule(threshold=0.0, seed=1, n_clients=100)
        b = ChaosSchedule(threshold=0.0, seed=2, n_clients=100)
        assert assign_roles(a) != assign_roles(b)


class TestChaosFleet:
    def test_fleet_survives_and_everyone_is_served_or_shed(self, frames):
        thr = float(np.percentile(frames[0].nodes["density"], 60))
        schedule = ChaosSchedule(
            threshold=thr,
            seed=7,
            n_clients=N_CLIENTS,
            fault_fraction=FAULT_FRACTION,
            requests_per_client=3,
            hot_frames=len(frames),
            resolution=8,
            ramp_s=0.5,
            # keep the slowloris clients short so the test stays fast
            slowloris_bytes=3,
            slowloris_gap_s=0.1,
        )
        with VisualizationService(
            frames,
            max_sessions=256,
            queue_depth=4,
            session_timeout=2.0,
            request_timeout=10.0,
        ) as service:
            report = run_fleet(service.address, schedule)

            # the service survived: still answering new sessions
            with VisualizationClient(service.address) as probe:
                assert probe.list_frames() == list(range(10))

            snap = service.stats_snapshot()

        expected_good = N_CLIENTS - round(N_CLIENTS * FAULT_FRACTION)
        assert report.well_behaved == expected_good
        # no well-behaved client failed silently: served or explicit shed
        assert report.failed == 0
        assert report.served + report.shed == report.well_behaved
        assert report.served > 0

        # the hot set coalesced: far fewer extractions than requests
        assert snap["cache_hit_rate"] > 0.5
        assert snap["extractions"] + snap["coalesced"] + snap["cache_hits"] >= (
            len(report.latencies)
        )
        # bounded queues: nothing left enqueued after the fleet drained
        assert snap["queue_depth"] == 0
        # the misbehaving 5% were all noticed by some defense
        assert (
            snap["timeouts"] + snap["protocol_errors"] + snap["shed_requests"]
        ) >= 1

    def test_fleet_against_tiny_service_sheds_not_fails(self, frames):
        """Starved of capacity the service turns clients away with
        BUSY -- it never leaves a well-behaved client in limbo."""
        import time

        from repro.octree.extraction import extract

        def slow_extract(frame, threshold, resolution):
            time.sleep(0.05)  # make sessions hold their slots
            return extract(frame, threshold, volume_resolution=resolution)

        thr = float(np.percentile(frames[0].nodes["density"], 60))
        schedule = ChaosSchedule(
            threshold=thr,
            seed=13,
            n_clients=40,
            fault_fraction=0.0,
            requests_per_client=2,
            hot_frames=len(frames),
            resolution=8,
            busy_retries=3,
            ramp_s=0.0,
        )
        with VisualizationService(
            frames, max_sessions=4, queue_depth=1,
            session_timeout=2.0, request_timeout=10.0,
            extract_fn=slow_extract,
        ) as service:
            report = run_fleet(service.address, schedule)
            snap = service.stats_snapshot()
        assert report.failed == 0
        assert report.served + report.shed == report.well_behaved
        assert report.shed > 0
        assert snap["sessions_shed"] > 0
