"""Particle frame I/O.

The simulation's on-disk unit is a *frame*: all particles of one time
step as contiguous little-endian float64, six values per particle --
the layout whose sheer size (5 GB per 100 M-particle step, 48 GB for
the billion-particle step) motivates the whole hybrid pipeline.

A tiny fixed header makes frames self-describing:

    bytes 0..7    magic  b"RPRFRAME"
    bytes 8..15   uint64 particle count
    bytes 16..23  uint64 time-step index
    bytes 24..    particle payload (n * 6 float64)
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

import numpy as np

__all__ = [
    "write_frame",
    "read_frame",
    "read_frame_mmap",
    "frame_to_store",
    "frame_path",
    "frame_nbytes",
    "FrameWriter",
]

MAGIC = b"RPRFRAME"
_HEADER = struct.Struct("<8sQQ")


def frame_nbytes(n_particles: int) -> int:
    """On-disk size of a frame with ``n_particles`` particles."""
    return _HEADER.size + int(n_particles) * 6 * 8


def write_frame(path, particles: np.ndarray, step: int = 0) -> int:
    """Write one frame; returns bytes written."""
    particles = np.ascontiguousarray(particles, dtype="<f8")
    if particles.ndim != 2 or particles.shape[1] != 6:
        raise ValueError("particles must be (N, 6)")
    with open(path, "wb") as f:
        f.write(_HEADER.pack(MAGIC, particles.shape[0], int(step)))
        f.write(particles.tobytes())
    return frame_nbytes(particles.shape[0])


def read_frame(path):
    """Read one frame; returns (particles (N, 6), step)."""
    with open(path, "rb") as f:
        head = f.read(_HEADER.size)
        magic, n, step = _HEADER.unpack(head)
        if magic != MAGIC:
            raise ValueError(f"{path}: not a particle frame file")
        payload = f.read(n * 6 * 8)
    if len(payload) != n * 6 * 8:
        raise ValueError(f"{path}: truncated frame (expected {n} particles)")
    particles = np.frombuffer(payload, dtype="<f8").reshape(n, 6).copy()
    return particles, step


def read_frame_mmap(path):
    """Memory-map a frame's particle payload without loading it.

    Returns (particles (N, 6) read-only memmap, step).  This is the
    right access path for the paper-scale frames (5 GB each at 100 M
    particles): the partitioning program streams the array without
    holding it in RAM, and slicing reads only the touched pages.
    """
    with open(path, "rb") as f:
        head = f.read(_HEADER.size)
    magic, n, step = _HEADER.unpack(head)
    if magic != MAGIC:
        raise ValueError(f"{path}: not a particle frame file")
    particles = np.memmap(
        path, dtype="<f8", mode="r", offset=_HEADER.size, shape=(n, 6)
    )
    return particles, step


def frame_to_store(path, out, shard_rows: int | None = None):
    """Convert one ``.frame`` file into a sharded out-of-core store.

    The frame payload is memory-mapped and re-chunked shard by shard
    (:class:`repro.core.store.StoreWriter`), so peak RSS stays at one
    shard regardless of the frame's size; the frame's step index is
    carried into the store manifest.  Returns the opened
    :class:`repro.core.store.ShardedStore`.
    """
    from repro.core.store import DEFAULT_SHARD_ROWS, create_store

    particles, step = read_frame_mmap(path)
    return create_store(
        out, particles,
        shard_rows=DEFAULT_SHARD_ROWS if shard_rows is None else int(shard_rows),
        step=step,
    )


def frame_path(directory, step: int) -> Path:
    """Canonical frame file name within a run directory."""
    return Path(directory) / f"step_{step:06d}.frame"


class FrameWriter:
    """Writes frames of a run into a directory, tracking totals.

    Mirrors how the paper's simulations stream time steps to disk; the
    accumulated ``total_bytes`` feeds the storage-accounting benches.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.steps_written: list[int] = []
        self.total_bytes = 0

    def write(self, particles: np.ndarray, step: int) -> Path:
        path = frame_path(self.directory, step)
        self.total_bytes += write_frame(path, particles, step)
        self.steps_written.append(int(step))
        return path

    def read(self, step: int) -> np.ndarray:
        particles, stored = read_frame(frame_path(self.directory, step))
        if stored != step:
            raise ValueError(f"frame claims step {stored}, expected {step}")
        return particles

    def __len__(self) -> int:
        return len(self.steps_written)
