"""Frame-stepping previewer with LRU byte-budget cache."""

import numpy as np
import pytest

from repro.hybrid.representation import HybridFrame
from repro.hybrid.viewer import FrameViewer


def _write_frames(directory, n, res=8, n_points=50):
    rng = np.random.default_rng(1)
    directory.mkdir(parents=True, exist_ok=True)
    nbytes = None
    for i in range(n):
        f = HybridFrame(
            volume=rng.random((res, res, res)).astype(np.float32),
            points=rng.random((n_points, 3)).astype(np.float32),
            point_densities=rng.random(n_points).astype(np.float32),
            lo=np.zeros(3),
            hi=np.ones(3),
            step=i,
        )
        f.save(directory / f"frame_{i:04d}.hybrid")
        nbytes = f.nbytes()
    return nbytes


class TestViewer:
    def test_empty_directory_raises(self, tmp_path):
        (tmp_path / "run").mkdir()
        with pytest.raises(FileNotFoundError):
            FrameViewer(tmp_path / "run")

    def test_frames_sorted_by_name(self, tmp_path):
        _write_frames(tmp_path / "run", 5)
        v = FrameViewer(tmp_path / "run")
        assert len(v) == 5
        assert [v.frame(i).step for i in range(5)] == [0, 1, 2, 3, 4]

    def test_stepping_wraps(self, tmp_path):
        _write_frames(tmp_path / "run", 3)
        v = FrameViewer(tmp_path / "run")
        assert v.current().step == 0
        v.step_forward()
        v.step_forward()
        v.step_forward()
        assert v.position == 0
        v.step_backward()
        assert v.position == 2

    def test_cache_hit_counted(self, tmp_path):
        _write_frames(tmp_path / "run", 3)
        v = FrameViewer(tmp_path / "run")
        v.frame(0)
        v.frame(0)
        assert v.stats["misses"] == 1
        assert v.stats["hits"] == 1

    def test_budget_evicts_lru(self, tmp_path):
        per_frame = _write_frames(tmp_path / "run", 4)
        # room for exactly two frames, mimicking "around 10 time steps
        # in memory" at paper scale
        v = FrameViewer(tmp_path / "run", memory_budget_bytes=2 * per_frame)
        v.frame(0)
        v.frame(1)
        v.frame(2)  # evicts 0
        assert v.stats["evictions"] == 1
        assert 0 not in v.cached_steps
        assert {1, 2} == set(v.cached_steps)
        v.frame(1)  # still cached: hit
        assert v.stats["hits"] == 1

    def test_tiny_budget_never_caches(self, tmp_path):
        _write_frames(tmp_path / "run", 2)
        v = FrameViewer(tmp_path / "run", memory_budget_bytes=10)
        v.frame(0)
        v.frame(0)
        assert v.stats["misses"] == 2
        assert v.cached_steps == []

    def test_preload_warms_cache(self, tmp_path):
        _write_frames(tmp_path / "run", 4)
        v = FrameViewer(tmp_path / "run")
        v.preload(range(4))
        before = v.stats["misses"]
        for i in range(4):
            v.frame(i)
        assert v.stats["misses"] == before

    def test_out_of_range(self, tmp_path):
        _write_frames(tmp_path / "run", 2)
        v = FrameViewer(tmp_path / "run")
        with pytest.raises(IndexError):
            v.frame(5)
        with pytest.raises(IndexError):
            v.goto(-1)

    def test_render_current(self, tmp_path):
        _write_frames(tmp_path / "run", 1)
        from repro.hybrid.renderer import HybridRenderer

        v = FrameViewer(tmp_path / "run", renderer=HybridRenderer(n_slices=8))
        from repro.render.camera import Camera

        cam = Camera.fit_bounds(np.zeros(3), np.ones(3), width=32, height=32)
        fb = v.render_current(camera=cam)
        assert fb.width == 32

    def test_load_time_recorded(self, tmp_path):
        _write_frames(tmp_path / "run", 1)
        v = FrameViewer(tmp_path / "run")
        v.frame(0)
        assert v.stats["load_seconds"] > 0.0
