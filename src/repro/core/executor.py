"""Crash-safe multiprocess shard execution.

The paper's multi-node runs treat node failure as routine; here the
equivalent is a ``ProcessPoolExecutor`` worker dying (OOM kill, node
loss, :class:`repro.core.faults.CrashOnce`), which poisons the whole
pool -- ``concurrent.futures`` raises ``BrokenProcessPool`` for every
outstanding future and plain ``pool.map`` loses the entire run.

:func:`run_shards` recovers instead of dying: results that completed
before the break are kept, the failed shards are retried in a fresh
pool (bounded attempts), and if pools keep breaking the remainder runs
serially in the parent -- slower, never wrong.  Deterministic
exceptions raised *by the shard function itself* propagate immediately
(retrying them would loop), only pool breakage is retried.

Recovery is visible in the tracer:

- ``parallel_pool_breaks``     -- pools lost to worker death
- ``parallel_shard_retries``   -- shards resubmitted to a fresh pool
- ``parallel_serial_fallbacks``-- shards finished serially in-parent

Both multiprocess entry points of the package
(:func:`repro.octree.partition.partition` with ``workers > 1`` and
:func:`repro.fieldlines.seeding.seed_density_proportional` with
``workers > 1``) run their shards through this function.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.core.trace import count, span

__all__ = ["run_shards"]

_UNSET = object()


def run_shards(
    fn,
    tasks,
    workers: int = 1,
    max_retries: int = 2,
    label: str = "shards",
    on_result=None,
):
    """Map ``fn`` over ``tasks`` on worker processes, surviving worker
    death; returns results in task order.

    ``fn`` and each task must be picklable.  ``workers <= 1`` (or a
    single task) runs serially in the parent.  After ``max_retries``
    broken pools, the still-unfinished shards fall back to serial
    execution with a warning.

    ``on_result(task, result)`` fires in the parent as each shard
    completes (in completion order, exactly once per shard) -- the
    hook incremental checkpointing hangs off, so a killed parent keeps
    the shards that finished before the kill.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        out = []
        for t in tasks:
            r = fn(t)
            if on_result is not None:
                on_result(t, r)
            out.append(r)
        return out

    results = [_UNSET] * len(tasks)
    pending = list(range(len(tasks)))
    attempt = 0
    while pending:
        if attempt > max_retries:
            count("parallel_serial_fallbacks", len(pending))
            warnings.warn(
                f"{label}: worker pool broke {attempt} times; finishing "
                f"{len(pending)} shard(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
            with span("serial_fallback", label=label, shards=len(pending)):
                for i in pending:
                    results[i] = fn(tasks[i])
                    if on_result is not None:
                        on_result(tasks[i], results[i])
            break
        broke = False
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                futures = [(i, pool.submit(fn, tasks[i])) for i in pending]
                for i, future in futures:
                    try:
                        results[i] = future.result()
                    except BrokenProcessPool:
                        broke = True
                    else:
                        if on_result is not None:
                            on_result(tasks[i], results[i])
        except BrokenProcessPool:
            # pool shutdown itself can re-raise after a break
            broke = True
        pending = [i for i in pending if results[i] is _UNSET]
        if broke:
            count("parallel_pool_breaks")
        if pending:
            count("parallel_shard_retries", len(pending))
        attempt += 1
    return results
