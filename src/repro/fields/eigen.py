"""Cavity eigenmode (resonance) finding.

The paper's introduction names "finding the eigenmodes in extremely
large and complex 3D electromagnetic structures" as one of the
driving terascale problems.  This module implements the standard
time-domain recipe the field solver enables: kick the cavity with a
broadband impulse, record the field at probe points as it rings, and
read the eigenfrequencies off the spectrum.  A running discrete
Fourier transform at a chosen resonance extracts that mode's spatial
profile for visualization.
"""

from __future__ import annotations

import numpy as np

from repro.fields.solver import TimeDomainSolver

__all__ = ["ResonanceFinder"]


class ResonanceFinder:
    """Impulse-response eigenfrequency extraction.

    Parameters
    ----------
    solver : a fresh :class:`TimeDomainSolver` (its port drive is
        disabled; the cavity rings freely after the impulse)
    probes : (P, 3) observation points; default is a small set spread
        along the axis of the structure
    """

    def __init__(self, solver: TimeDomainSolver, probes=None):
        self.solver = solver
        solver.drive_amplitude = 0.0
        if probes is None:
            length = solver.structure.length
            zs = np.linspace(0.15 * length, 0.85 * length, 5)
            r = 0.25 * solver.structure.profile.cell_radius
            probes = np.column_stack(
                [np.full(5, r), np.zeros(5), zs]
            )
        self.probes = np.atleast_2d(np.asarray(probes, dtype=np.float64))
        self.signal: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def kick(self, amplitude: float = 1.0, seed: int = 0, smooth: bool = True) -> None:
        """Impulse excitation of the cavity.

        ``smooth=True`` (default) injects a radially smooth Ez blob,
        which overlaps the low-order TM modes strongly -- the modes a
        cavity designer wants first.  ``smooth=False`` injects white
        noise (flat over all modes; the high-order forest dominates
        the spectrum)."""
        pts, shape = self.solver._component_points("ez")
        if smooth:
            r = np.hypot(pts[:, 0], pts[:, 1]).reshape(shape)
            radius = self.solver.structure.profile.cell_radius
            blob = np.exp(-((r / (0.5 * radius)) ** 2))
        else:
            rng = np.random.default_rng(seed)
            blob = rng.standard_normal(shape)
        self.solver.ez += amplitude * blob * self.solver._mask["ez"]

    def ring(self, duration: float, every: int = 1) -> None:
        """Let the cavity ring, recording the probes every ``every``
        steps."""
        n_steps = self.solver.steps_for(duration)
        for i in range(n_steps):
            self.solver.step()
            if i % every == 0:
                self.signal.append(self.solver.sample_e(self.probes)[:, 2])
        self._sample_dt = self.solver.dt * every

    # ------------------------------------------------------------------
    def spectrum(self):
        """(frequencies, power) of the probe average, Hann-windowed."""
        if not self.signal:
            raise RuntimeError("call kick() and ring() first")
        sig = np.mean(np.asarray(self.signal), axis=1)
        sig = sig - sig.mean()
        window = np.hanning(len(sig))
        spec = np.abs(np.fft.rfft(sig * window)) ** 2
        freqs = np.fft.rfftfreq(len(sig), d=self._sample_dt)
        return freqs, spec

    def resonances(self, n_peaks: int = 3, min_separation: int = 3):
        """The ``n_peaks`` strongest spectral peaks (frequencies,
        descending power).  A peak must beat both neighbors and be at
        least ``min_separation`` bins from a stronger peak."""
        freqs, spec = self.spectrum()
        interior = (spec[1:-1] > spec[:-2]) & (spec[1:-1] > spec[2:])
        candidates = np.flatnonzero(interior) + 1
        candidates = candidates[np.argsort(-spec[candidates])]
        chosen: list[int] = []
        for c in candidates:
            if all(abs(c - k) >= min_separation for k in chosen):
                chosen.append(int(c))
            if len(chosen) == n_peaks:
                break
        return freqs[chosen]

    # ------------------------------------------------------------------
    def mode_profile(self, frequency: float, duration: float):
        """Extract a mode's spatial Ez profile by running DFT.

        Continues the simulation for ``duration``, accumulating
        exp(-i w t) Ez(x, t); the magnitude of the accumulator is the
        standing-wave profile of the mode nearest ``frequency``.
        Returns (vertices_profile (V,),) sampled at the structure
        mesh's vertices.
        """
        mesh = self.solver.structure.mesh
        acc = np.zeros(mesh.n_vertices, dtype=np.complex128)
        w = 2.0 * np.pi * frequency
        n_steps = self.solver.steps_for(duration)
        for _ in range(n_steps):
            self.solver.step()
            ez = self.solver.sample_e(mesh.vertices)[:, 2]
            acc += ez * np.exp(-1j * w * self.solver.time) * self.solver.dt
        return np.abs(acc)
