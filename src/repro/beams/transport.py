"""Vectorized particle transport through lattice elements.

Transverse planes advance by the element's 2x2 transfer matrices; the
longitudinal plane drifts (z += pz * L).  All updates are applied to
the whole (N, 6) particle array with broadcasting -- no per-particle
Python loops, per the hybrid-rendering pipeline's need to push 10^6+
particles per step.
"""

from __future__ import annotations

import numpy as np

from repro.beams.distributions import PX, PY, PZ, X, Y, Z

__all__ = ["transfer_matrices", "apply_maps", "track_step", "track"]


def transfer_matrices(element):
    """(Mx, My) for an element; thin wrapper kept for API clarity."""
    return element.matrices()


def apply_maps(particles: np.ndarray, mx: np.ndarray, my: np.ndarray, length: float) -> None:
    """Apply 2x2 maps to the transverse planes in place, drift z."""
    x = particles[:, X]
    px = particles[:, PX]
    y = particles[:, Y]
    py = particles[:, PY]
    new_x = mx[0, 0] * x + mx[0, 1] * px
    new_px = mx[1, 0] * x + mx[1, 1] * px
    new_y = my[0, 0] * y + my[0, 1] * py
    new_py = my[1, 0] * y + my[1, 1] * py
    particles[:, X] = new_x
    particles[:, PX] = new_px
    particles[:, Y] = new_y
    particles[:, PY] = new_py
    particles[:, Z] += particles[:, PZ] * length


def track_step(particles: np.ndarray, element) -> np.ndarray:
    """Advance particles through one element in place; returns the array.

    Elements providing a ``transport`` method (coupled or nonlinear
    maps, e.g. solenoids and RF gaps) are applied through it; plain
    per-plane-matrix elements go through :func:`apply_maps`.
    """
    custom = getattr(element, "transport", None)
    if custom is not None:
        custom(particles)
        return particles
    mx, my = element.matrices()
    apply_maps(particles, mx, my, element.length)
    return particles


def track(particles: np.ndarray, lattice, copy: bool = False) -> np.ndarray:
    """Advance particles through a sequence of elements.

    With ``copy=True`` the input array is left untouched.
    """
    if copy:
        particles = particles.copy()
    for element in lattice:
        track_step(particles, element)
    return particles
