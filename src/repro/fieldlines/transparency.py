"""Interior-structure disambiguation (paper section 3.3.3).

Three tools for seeing inside very dense line data:

- ``cutaway``: remove the lines in front of a clip plane ("cut away
  the data which is not in the region of interest", Figure 6 (h));
- ``region_emphasis_alpha``: opaque region of interest, transparent
  context ("leave the region of interest opaque while using
  transparency to de-emphasize the remaining data", Figure 6 (i));
- the transparent compositing itself rides on the order-independent
  per-pixel fragment sort of
  :func:`repro.render.framebuffer.composite_fragments`, the software
  equivalent of the GeForce 3 path the paper cites.
"""

from __future__ import annotations

import numpy as np

from repro.fieldlines.sos import build_strips, render_strips
from repro.render.camera import Camera
from repro.render.framebuffer import Framebuffer

__all__ = ["cutaway", "region_emphasis_alpha", "render_with_emphasis"]


def cutaway(lines, plane_point, plane_normal, keep: str = "behind"):
    """Clip whole lines against a plane.

    A line survives when *all* its points are on the kept side
    (lines straddling the plane are dropped -- matching the clean
    front-half removal of the paper's Figure 9).  ``keep`` is
    'behind' (n . (p - p0) <= 0) or 'front'.
    """
    if keep not in ("behind", "front"):
        raise ValueError("keep must be 'behind' or 'front'")
    p0 = np.asarray(plane_point, dtype=np.float64)
    n = np.asarray(plane_normal, dtype=np.float64)
    n = n / np.linalg.norm(n)
    out = []
    for line in lines:
        side = (line.points - p0) @ n
        ok = side <= 0 if keep == "behind" else side >= 0
        if ok.all():
            out.append(line)
    return out


def region_emphasis_alpha(
    lines,
    center,
    radius: float,
    alpha_inside: float = 1.0,
    alpha_outside: float = 0.12,
) -> np.ndarray:
    """Per-line alpha: opaque inside a spherical region of interest,
    faint outside.  A line counts as inside when any point enters the
    sphere."""
    center = np.asarray(center, dtype=np.float64)
    alphas = np.empty(len(lines))
    for i, line in enumerate(lines):
        d2 = np.sum((line.points - center) ** 2, axis=1)
        alphas[i] = alpha_inside if float(d2.min()) <= radius * radius else alpha_outside
    return alphas


def render_with_emphasis(
    camera: Camera,
    lines,
    center,
    radius: float,
    width: float = 0.02,
    colormap="electric",
    alpha_inside: float = 1.0,
    alpha_outside: float = 0.12,
    fb: Framebuffer | None = None,
) -> Framebuffer:
    """Figure 6 (i): strips with opaque ROI and transparent context.

    Splits the line set by region and renders the faint context with
    the transparency path, then the opaque region over it.
    """
    alphas = region_emphasis_alpha(lines, center, radius, alpha_inside, alpha_outside)
    inside = [l for l, a in zip(lines, alphas) if a >= alpha_inside]
    outside = [l for l, a in zip(lines, alphas) if a < alpha_inside]
    if fb is None:
        fb = Framebuffer(camera.width, camera.height)
    mags = np.concatenate([l.magnitudes for l in lines]) if lines else np.zeros(1)
    mrange = (float(mags.min()), float(mags.max()))
    if outside:
        strips_out = build_strips(outside, camera, width)
        render_strips(
            camera, strips_out, colormap=colormap, fb=fb,
            base_alpha=alpha_outside, magnitude_range=mrange,
        )
    if inside:
        strips_in = build_strips(inside, camera, width)
        render_strips(
            camera, strips_in, colormap=colormap, fb=fb,
            base_alpha=alpha_inside if alpha_inside < 1.0 else 1.0,
            magnitude_range=mrange,
        )
    return fb
