"""RGBA + depth framebuffer with Porter-Duff compositing.

Two compositing primitives cover everything the paper's renderer does:

``composite_over``
    Full-image *over* operator, used to layer volume slices and image
    passes back-to-front.

``composite_fragments``
    Per-pixel *under* compositing of an unordered fragment stream
    (pixel index, depth, premultipliable RGBA).  This is the software
    stand-in for the order-independent transparency path on the GeForce
    3 (paper section 3.3.3): fragments are sorted per pixel by depth and
    folded front-to-back with a fully vectorized segmented scan.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Framebuffer",
    "composite_over",
    "composite_fragments",
    "accumulate_fragments",
]

_ALPHA_MAX = 0.99999


def composite_over(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
    """Composite ``src`` over ``dst`` in place (both (..., 4) float RGBA,
    non-premultiplied) and return ``dst``."""
    sa = src[..., 3:4]
    da = dst[..., 3:4]
    out_a = sa + da * (1.0 - sa)
    safe = np.where(out_a <= 0.0, 1.0, out_a)
    out_rgb = (src[..., :3] * sa + dst[..., :3] * da * (1.0 - sa)) / safe
    dst[..., :3] = out_rgb
    dst[..., 3:4] = out_a
    return dst


def composite_fragments(
    pixels: np.ndarray,
    depths: np.ndarray,
    rgba: np.ndarray,
    n_pixels: int,
):
    """Composite an unordered fragment stream per pixel.

    Parameters
    ----------
    pixels : (F,) int flat pixel indices
    depths : (F,) float eye depth (smaller = nearer)
    rgba : (F, 4) float colors with alpha
    n_pixels : total pixel count of the target image

    Returns
    -------
    out_rgba : (n_pixels, 4) composited color per pixel
    out_depth : (n_pixels,) depth of the nearest contributing fragment
        (+inf where no fragment landed)

    Notes
    -----
    Front-to-back *under* compositing per pixel:

        C = sum_i c_i a_i prod_{j<i} (1 - a_j)
        A = 1 - prod_i (1 - a_i)

    The per-segment prefix products are computed with a cumprod-ratio
    trick so the whole operation stays vectorized regardless of how
    many fragments pile up in one pixel.
    """
    out_rgba = np.zeros((n_pixels, 4))
    out_depth = np.full(n_pixels, np.inf)
    upix, pm, near = accumulate_fragments(pixels, depths, rgba)
    if upix.size == 0:
        return out_rgba, out_depth
    out_rgba[upix] = pm
    out_depth[upix] = near

    # un-premultiply
    a = out_rgba[:, 3:4]
    safe = np.where(a <= 0.0, 1.0, a)
    out_rgba[:, :3] /= safe
    return out_rgba, out_depth


def accumulate_fragments(
    pixels: np.ndarray,
    depths: np.ndarray,
    rgba: np.ndarray,
):
    """Sparse core of :func:`composite_fragments`.

    Folds an unordered fragment stream per pixel (front-to-back
    *under*) but returns only the touched pixels, premultiplied -- the
    form the interleaved volume compositor consumes directly without
    allocating full-frame layers per slab.

    Returns
    -------
    upix : (U,) int64 unique flat pixel indices (ascending)
    pm_rgba : (U, 4) premultiplied composited color per touched pixel
    near_depth : (U,) depth of the nearest contributing fragment
    """
    pixels = np.asarray(pixels)
    depths = np.asarray(depths, dtype=np.float64)
    rgba = np.asarray(rgba, dtype=np.float64)
    if pixels.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, 4)),
            np.empty(0),
        )

    order = np.lexsort((depths, pixels))
    pix = pixels[order]
    dep = depths[order]
    col = rgba[order]

    alpha = np.clip(col[:, 3], 0.0, _ALPHA_MAX)
    trans = 1.0 - alpha                           # per-fragment transmittance
    # log-space segmented prefix product: stable even for long segments
    logt = np.log(np.maximum(trans, 1e-12))
    c_log = np.cumsum(logt)
    seg_start = np.ones(pix.size, dtype=bool)
    seg_start[1:] = pix[1:] != pix[:-1]
    start_idx = np.flatnonzero(seg_start)
    # log prefix product *before* each fragment within its segment:
    # prefix_log[i] = c_log[i-1] - c_log[segment_start(i)-1]
    seg_id = np.cumsum(seg_start) - 1
    base_vals = np.where(start_idx > 0, c_log[start_idx - 1], 0.0)
    base_per_frag = base_vals[seg_id]
    prefix_log = np.concatenate([[0.0], c_log[:-1]]) - base_per_frag
    prefix_log[start_idx] = 0.0
    prefix = np.exp(prefix_log)

    weight = alpha * prefix
    contrib = col[:, :3] * weight[:, None]
    pm_rgba = np.empty((start_idx.size, 4))
    pm_rgba[:, 0] = np.add.reduceat(contrib[:, 0], start_idx)
    pm_rgba[:, 1] = np.add.reduceat(contrib[:, 1], start_idx)
    pm_rgba[:, 2] = np.add.reduceat(contrib[:, 2], start_idx)
    pm_rgba[:, 3] = np.add.reduceat(weight, start_idx)
    return pix[start_idx].astype(np.int64), pm_rgba, dep[start_idx]


class Framebuffer:
    """An RGBA + depth framebuffer.

    ``rgba`` is (H, W, 4) float64, non-premultiplied.  ``depth`` is
    (H, W) eye-space depth of the nearest opaque-ish write, used for
    z-testing rasterized geometry.
    """

    def __init__(self, width: int, height: int, background=(0.0, 0.0, 0.0, 0.0)):
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self.background = np.asarray(background, dtype=np.float64)
        self.rgba = np.empty((self.height, self.width, 4))
        self.depth = np.empty((self.height, self.width))
        self.clear()

    def clear(self) -> None:
        self.rgba[...] = self.background
        self.depth[...] = np.inf

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    def pixel_index(self, xy: np.ndarray):
        """Map float pixel coordinates (N, 2) to flat indices; returns
        (flat_idx, in_bounds_mask)."""
        xy = np.atleast_2d(xy)
        ix = np.floor(xy[:, 0]).astype(np.int64)
        iy = np.floor(xy[:, 1]).astype(np.int64)
        ok = (ix >= 0) & (ix < self.width) & (iy >= 0) & (iy < self.height)
        flat = np.where(ok, iy * self.width + ix, 0)
        return flat, ok

    def layer_over(self, layer_rgba: np.ndarray, layer_depth: np.ndarray | None = None) -> None:
        """Composite a full-size layer over the framebuffer, optionally
        updating depth where the layer is visibly present."""
        if layer_rgba.shape != self.rgba.shape:
            raise ValueError("layer shape mismatch")
        composite_over_under_depth = layer_rgba  # naming clarity only
        composite_over(self.rgba.reshape(-1, 4), composite_over_under_depth.reshape(-1, 4))
        if layer_depth is not None:
            present = layer_rgba[..., 3] > 1e-4
            self.depth[present] = np.minimum(self.depth[present], layer_depth[present])

    def layer_under(self, layer_rgba: np.ndarray, layer_depth: np.ndarray | None = None) -> None:
        """Composite a layer *under* the current framebuffer content."""
        if layer_rgba.shape != self.rgba.shape:
            raise ValueError("layer shape mismatch")
        tmp = layer_rgba.reshape(-1, 4).copy()
        composite_over(tmp, self.rgba.reshape(-1, 4).copy())
        self.rgba[...] = tmp.reshape(self.rgba.shape)
        if layer_depth is not None:
            present = layer_rgba[..., 3] > 1e-4
            self.depth[present] = np.minimum(self.depth[present], layer_depth[present])

    def to_rgb8(self) -> np.ndarray:
        """Flatten against the background color and quantize to uint8."""
        img = self.rgba[..., :3] * self.rgba[..., 3:4] + (1.0 - self.rgba[..., 3:4]) * self.background[:3]
        return np.clip(np.round(img * 255.0), 0, 255).astype(np.uint8)
