"""View-aligned slice geometry for octree-refined AMR volumes.

The flat renderer resamples one uniform grid through a stacked CSR
matrix (:class:`repro.render.frame_cache.FrameGeometry`).  An
:class:`repro.octree.amr.AmrVolume` is a *collection* of bricks at
mixed resolutions, but the slice machinery only ever needed two
things: a flat pixel index per covered sample and eight (voxel index,
weight) pairs per sample.  So AMR volumes reuse the same
``FrameGeometry`` container -- the matrix columns just address the
concatenated per-brick ``data`` array instead of a dense grid, and the
trilinear stencil of each sample is built inside the brick that
contains it (cell-centered, clamped at brick faces; the half-texel
seams this admits are noted in DESIGN.md).

Samples falling in *empty* bricks are dropped from the matrix
entirely -- the AMR analogue of empty-space skipping, and where the
resample-time win at equal bytes comes from.

Cache key: :func:`amr_geometry_key` extends the flat
:func:`geometry_key` with an ``("amr", level_hash)`` suffix, so an AMR
and a flat volume seen from the same camera can never collide in the
shared :class:`FrameGeometryCache`, while two AMR frames with the same
brick manifest share one cached geometry.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.render.frame_cache import (
    FrameGeometry,
    frame_geometry_cache,
    geometry_key,
)

__all__ = ["amr_geometry_key", "build_amr_geometry", "AmrRgbaVolume"]


def amr_geometry_key(camera, amr, n_slices: int):
    """Cache key for (camera, AMR brick manifest, slicing).

    The grid-shape slot of the flat key carries the brick geometry
    (root bricks, level-0 cells, total cells) and the suffix pins the
    level-map hash; flat keys are plain 12-tuples, so the two key
    families are disjoint by construction.
    """
    base = geometry_key(
        camera,
        (int(amr.bricks), int(amr.brick_cells), int(amr.total_cells)),
        amr.lo,
        amr.hi,
        n_slices,
    )
    return base + ("amr", int(amr.level_hash))


def build_amr_geometry(camera, amr, n_slices: int) -> FrameGeometry:
    """Compute slice geometry whose matrix columns address ``amr.data``."""
    from repro.render.volume import volume_depth_range

    key = amr_geometry_key(camera, amr, n_slices)
    lo = np.asarray(amr.lo, dtype=np.float64)
    hi = np.asarray(amr.hi, dtype=np.float64)
    bricks = int(amr.bricks)
    levels_flat = amr.levels.reshape(-1).astype(np.int64)
    offsets = amr.offsets

    d0, d1 = volume_depth_range(camera, lo, hi)
    if d1 <= d0:
        return FrameGeometry(
            key, d0, d1, 0.0, np.zeros(0),
            np.zeros(0, np.int32), np.zeros(1, np.int64), None,
        )
    slab = (d1 - d0) / n_slices
    depths = d1 - (np.arange(n_slices, dtype=np.float64) + 0.5) * slab

    origins, dirs = camera.pixel_rays()
    cos = np.maximum(dirs @ camera.forward, 1e-9)
    box_span = np.maximum(hi - lo, 1e-300)

    pix_parts: list[np.ndarray] = []
    idx_parts: list[np.ndarray] = []
    w_parts: list[np.ndarray] = []
    row_start = np.zeros(n_slices + 1, dtype=np.int64)
    for s in range(n_slices):
        t = depths[s] / cos
        pts = origins + dirs * t[:, None]
        coords = (pts - lo) / box_span
        inside = np.all((coords >= 0.0) & (coords <= 1.0), axis=1)
        act = np.flatnonzero(inside)
        if len(act):
            c = coords[act]
            rel = c * bricks
            bidx = np.clip(rel.astype(np.int64), 0, bricks - 1)
            bid = (bidx[:, 0] * bricks + bidx[:, 1]) * bricks + bidx[:, 2]
            lvl = levels_flat[bid]
            live = lvl >= 0  # empty-space skip: drop samples in empty bricks
            act = act[live]
        row_start[s + 1] = row_start[s] + len(act)
        if len(act) == 0:
            continue
        c, rel, bidx, bid, lvl = (
            c[live], rel[live], bidx[live], bid[live], lvl[live],
        )
        m = np.int64(amr.brick_cells) << lvl
        # brick-local cell-centered texel coordinates, same convention
        # as FrameGeometry.build but clamped within the owning brick
        local = (rel - bidx) * m[:, None]
        f = np.clip(local - 0.5, 0.0, (m - 1.0)[:, None])
        i0 = np.minimum(f.astype(np.int64), (m - 2)[:, None])
        tfr = f - i0
        wx0, wx1 = 1.0 - tfr[:, 0], tfr[:, 0]
        wy0, wy1 = 1.0 - tfr[:, 1], tfr[:, 1]
        wz0, wz1 = 1.0 - tfr[:, 2], tfr[:, 2]
        w = np.empty((len(c), 8))
        w[:, 0] = wx0 * wy0 * wz0
        w[:, 1] = wx1 * wy0 * wz0
        w[:, 2] = wx0 * wy1 * wz0
        w[:, 3] = wx1 * wy1 * wz0
        w[:, 4] = wx0 * wy0 * wz1
        w[:, 5] = wx1 * wy0 * wz1
        w[:, 6] = wx0 * wy1 * wz1
        w[:, 7] = wx1 * wy1 * wz1
        base = offsets[bid] + (i0[:, 0] * m + i0[:, 1]) * m + i0[:, 2]
        # per-sample corner strides vary with the brick's resolution
        sx, sy, sz = m * m, m, np.ones_like(m)
        corner = np.stack(
            [
                np.zeros_like(m), sx, sy, sx + sy,
                sz, sx + sz, sy + sz, sx + sy + sz,
            ],
            axis=1,
        )
        idx = base[:, None] + corner
        pix_parts.append(act.astype(np.int32))
        idx_parts.append(idx)
        w_parts.append(w)

    n_rows = int(row_start[-1])
    if n_rows == 0:
        return FrameGeometry(
            key, d0, d1, slab, depths,
            np.zeros(0, np.int32), row_start, None,
        )
    pix = np.concatenate(pix_parts)
    data = np.concatenate(w_parts).ravel()
    indices = np.concatenate(idx_parts).ravel()
    indptr = np.arange(0, n_rows * 8 + 1, 8, dtype=np.int64)
    matrix = sp.csr_matrix(
        (data, indices, indptr), shape=(n_rows, int(amr.total_cells)), copy=False
    )
    return FrameGeometry(key, d0, d1, slab, depths, pix, row_start, matrix)


class AmrRgbaVolume:
    """A classified AMR volume, ready for :func:`render_mixed`.

    Pairs the brick structure (for geometry) with the per-cell RGBA of
    the transfer function applied to the flat ``data`` array (for
    sampling).  ``render_mixed`` duck-types on ``flat_rgba`` to route
    through :func:`build_amr_geometry` instead of the dense path.
    """

    def __init__(self, amr, flat_rgba: np.ndarray):
        flat_rgba = np.ascontiguousarray(flat_rgba, dtype=np.float64)
        if flat_rgba.ndim != 2 or flat_rgba.shape != (amr.total_cells, 4):
            raise ValueError(
                f"flat_rgba must be ({amr.total_cells}, 4), "
                f"got {flat_rgba.shape}"
            )
        self.amr = amr
        self.flat_rgba = flat_rgba

    @property
    def lo(self):
        return self.amr.lo

    @property
    def hi(self):
        return self.amr.hi

    def geometry(self, camera, n_slices: int, cache) -> FrameGeometry:
        """Slice geometry under the same cache policy as the flat path:
        ``None`` -> process-global cache, ``False`` -> uncached build,
        a :class:`FrameGeometryCache` -> that instance."""
        if cache is None:
            cache = frame_geometry_cache()
        if cache is False:
            return build_amr_geometry(camera, self.amr, n_slices)
        key = amr_geometry_key(camera, self.amr, n_slices)
        return cache.get_keyed(
            key,
            lambda: build_amr_geometry(camera, self.amr, n_slices),
            n_slices=n_slices,
        )
