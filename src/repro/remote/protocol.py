"""Wire protocol for the remote visualization link.

Length-prefixed binary messages, version 2 of the framing:

    4s  magic  b"RPV2"
    u16 protocol version (2)
    u16 message type
    u64 payload length
    u32 CRC32 of the payload

followed by the payload bytes.  The magic keeps a desynchronized or
non-protocol stream from being interpreted as a length field; the
CRC32 rejects payloads corrupted in flight.  :func:`recv_message`
raises typed :class:`~repro.core.errors.ProtocolError` subclasses --
never garbage decodes -- so both ends can distinguish a damaged stream
(reconnect / drop the connection) from application errors.

Payloads reuse the package's on-disk codecs (hybrid frames serialize
with :meth:`HybridFrame.save`'s layout); requests are small structs.

Both transports speak the same framing: the blocking socket functions
(:func:`send_message` / :func:`recv_message`) serve the classic
thread-per-connection :class:`~repro.remote.server.VisualizationServer`
and the synchronous client, while the asyncio stream functions
(:func:`send_message_async` / :func:`recv_message_async`) serve the
multi-tenant :class:`~repro.remote.service.VisualizationService`.
Header validation is shared, so the two paths cannot drift.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.core.errors import (
    BadMagicError,
    BadVersionError,
    ChecksumError,
    MessageTooLargeError,
    ProtocolError,
    TruncatedMessageError,
)
from repro.hybrid.representation import HybridFrame

__all__ = ["MessageType", "Message", "send_message", "recv_message",
           "send_message_async", "recv_message_async",
           "encode_hybrid", "decode_hybrid", "encode_busy", "decode_busy",
           "encode_stats", "decode_stats", "PROTOCOL_MAGIC",
           "PROTOCOL_VERSION", "MAX_PAYLOAD"]

PROTOCOL_MAGIC = b"RPV2"
PROTOCOL_VERSION = 2
MAX_PAYLOAD = 1 << 32  # 4 GiB; anything larger is a corrupted length
_FRAME_HEADER = struct.Struct("<4sHHQI")


class MessageType(IntEnum):
    """Wire message kinds of the visualization link."""

    LIST_FRAMES = 1          # -> FRAME_LIST
    FRAME_LIST = 2           # payload: u64 count, u64 steps...
    GET_HYBRID = 3           # payload: u64 frame index, f8 threshold, u32 resolution
    HYBRID_FRAME = 4         # payload: encoded HybridFrame
    ERROR = 5                # payload: utf-8 message
    SHUTDOWN = 6             # payload: the server-generated shutdown token
    GET_STATS = 7            # -> STATS
    STATS = 8                # payload: utf-8 JSON stats document
    BUSY = 9                 # payload: f8 retry-after seconds, utf-8 reason


@dataclass
class Message:
    type: MessageType
    payload: bytes = b""


def send_message(sock, message: Message, bandwidth_bps: float | None = None) -> int:
    """Send a message; returns bytes sent.

    ``bandwidth_bps`` throttles by sleeping between chunks, emulating
    the wide-area link of the paper's remote setting.
    """
    import time

    header = _FRAME_HEADER.pack(
        PROTOCOL_MAGIC,
        PROTOCOL_VERSION,
        int(message.type),
        len(message.payload),
        zlib.crc32(message.payload) & 0xFFFFFFFF,
    )
    data = header + message.payload
    if bandwidth_bps is None:
        sock.sendall(data)
    else:
        chunk = max(int(bandwidth_bps * 0.01), 1024)  # ~10 ms per chunk
        for i in range(0, len(data), chunk):
            part = data[i : i + chunk]
            sock.sendall(part)
            time.sleep(len(part) / bandwidth_bps)
    return len(data)


def _recv_exact(sock, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        part = sock.recv(min(n - len(buf), 1 << 20))
        if not part:
            raise TruncatedMessageError(
                f"peer closed the connection mid-message "
                f"({len(buf)}/{n} bytes received)"
            )
        buf.extend(part)
    return bytes(buf)


def _unpack_header(head: bytes):
    """Validate a frame header; returns ``(mtype, length, crc)``."""
    magic, version, mtype, length, crc = _FRAME_HEADER.unpack(head)
    if magic != PROTOCOL_MAGIC:
        raise BadMagicError(f"bad frame magic {magic!r} (stream desynchronized?)")
    if version != PROTOCOL_VERSION:
        raise BadVersionError(
            f"peer speaks protocol v{version}, expected v{PROTOCOL_VERSION}"
        )
    if length > MAX_PAYLOAD:
        raise MessageTooLargeError(
            f"declared payload of {length} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        )
    return mtype, length, crc


def _check_payload(payload: bytes, crc: int, length: int, mtype: int) -> Message:
    """Verify a payload against its header; returns the typed message."""
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ChecksumError(
            f"payload CRC mismatch on a {length}-byte {_type_name(mtype)} message"
        )
    try:
        mtype = MessageType(mtype)
    except ValueError as exc:
        raise ProtocolError(f"unknown message type {mtype}") from exc
    return Message(mtype, payload)


def recv_message(sock) -> Message:
    """Read exactly one framed message from the socket.

    Raises :class:`BadMagicError`, :class:`BadVersionError`,
    :class:`MessageTooLargeError`, :class:`ChecksumError`, or
    :class:`TruncatedMessageError` when the stream is damaged, and
    :class:`ProtocolError` for an unknown message type.
    """
    head = _recv_exact(sock, _FRAME_HEADER.size)
    mtype, length, crc = _unpack_header(head)
    payload = _recv_exact(sock, length) if length else b""
    return _check_payload(payload, crc, length, mtype)


# ----------------------------------------------------------------------
# asyncio transport (same framing, stream reader/writer endpoints)
# ----------------------------------------------------------------------
async def send_message_async(
    writer: asyncio.StreamWriter,
    message: Message,
    bandwidth_bps: float | None = None,
) -> int:
    """Send one framed message on an asyncio stream; returns bytes sent.

    ``bandwidth_bps`` throttles by sleeping between chunks without
    blocking the event loop, mirroring :func:`send_message`.
    """
    header = _FRAME_HEADER.pack(
        PROTOCOL_MAGIC,
        PROTOCOL_VERSION,
        int(message.type),
        len(message.payload),
        zlib.crc32(message.payload) & 0xFFFFFFFF,
    )
    data = header + message.payload
    if bandwidth_bps is None:
        writer.write(data)
        await writer.drain()
    else:
        chunk = max(int(bandwidth_bps * 0.01), 1024)  # ~10 ms per chunk
        for i in range(0, len(data), chunk):
            part = data[i : i + chunk]
            writer.write(part)
            await writer.drain()
            await asyncio.sleep(len(part) / bandwidth_bps)
    return len(data)


async def _recv_exact_async(reader: asyncio.StreamReader, n: int) -> bytes:
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedMessageError(
            f"peer closed the connection mid-message "
            f"({len(exc.partial)}/{n} bytes received)"
        ) from exc


async def recv_message_async(reader: asyncio.StreamReader) -> Message:
    """Read exactly one framed message from an asyncio stream.

    Raises the same typed :class:`~repro.core.errors.ProtocolError`
    subclasses as :func:`recv_message` -- the header/CRC validation is
    shared code.
    """
    head = await _recv_exact_async(reader, _FRAME_HEADER.size)
    mtype, length, crc = _unpack_header(head)
    payload = await _recv_exact_async(reader, length) if length else b""
    return _check_payload(payload, crc, length, mtype)


def _type_name(mtype: int) -> str:
    try:
        return MessageType(mtype).name
    except ValueError:
        return f"type-{mtype}"


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
_GET_HYBRID = struct.Struct("<QdI")
_U64 = struct.Struct("<Q")


def encode_get_hybrid(frame_index: int, threshold: float, resolution: int) -> bytes:
    return _GET_HYBRID.pack(frame_index, threshold, resolution)


def decode_get_hybrid(payload: bytes):
    try:
        return _GET_HYBRID.unpack(payload)
    except struct.error as exc:
        raise ProtocolError(f"malformed GET_HYBRID payload: {exc}") from exc


def encode_frame_list(steps) -> bytes:
    arr = np.asarray(list(steps), dtype="<u8")
    return _U64.pack(len(arr)) + arr.tobytes()


def decode_frame_list(payload: bytes):
    try:
        (count,) = _U64.unpack_from(payload, 0)
    except struct.error as exc:
        raise ProtocolError(f"malformed FRAME_LIST payload: {exc}") from exc
    if len(payload) < _U64.size + count * 8:
        raise ProtocolError(
            f"FRAME_LIST payload truncated ({len(payload)} bytes for "
            f"{count} steps)"
        )
    return np.frombuffer(payload, dtype="<u8", count=count, offset=_U64.size).tolist()


_BUSY = struct.Struct("<d")


def encode_busy(retry_after: float, reason: str = "") -> bytes:
    """BUSY payload: when to come back, and why the request was shed."""
    return _BUSY.pack(float(retry_after)) + reason.encode()


def decode_busy(payload: bytes):
    """Decode a BUSY payload; returns ``(retry_after, reason)``."""
    try:
        (retry_after,) = _BUSY.unpack_from(payload, 0)
    except struct.error as exc:
        raise ProtocolError(f"malformed BUSY payload: {exc}") from exc
    return retry_after, payload[_BUSY.size :].decode(errors="replace")


def encode_stats(stats: dict) -> bytes:
    """STATS payload: the service's live counters as a JSON document."""
    return json.dumps(stats, sort_keys=True).encode()


def decode_stats(payload: bytes) -> dict:
    """Decode a STATS payload back into a dict."""
    try:
        doc = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed STATS payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("STATS payload is not a JSON object")
    return doc


def encode_hybrid(frame: HybridFrame) -> bytes:
    """Serialize a hybrid frame using its file layout."""
    return frame.to_bytes()


def decode_hybrid(payload: bytes) -> HybridFrame:
    """Deserialize a hybrid frame received on the wire."""
    return HybridFrame.from_bytes(payload, source="<wire>")
