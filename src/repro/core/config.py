"""Pipeline configuration dataclasses.

Every knob of the two end-to-end workflows in one place, with the
paper's corresponding parameter noted where one exists.
"""

from __future__ import annotations

from dataclasses import MISSING, asdict, dataclass, field, fields

from repro.beams.simulation import BeamConfig

__all__ = ["BeamPipelineConfig", "FieldLinePipelineConfig", "config_defaults"]


def config_defaults(cls) -> dict:
    """Field-name -> default-value map of a config dataclass.

    This is the **single source of defaults** for the whole project:
    the CLI derives its argparse defaults from it, so a default changed
    here changes everywhere at once (no three-way drift between
    argparse, dataclasses, and function signatures).
    """
    out = {}
    for f in fields(cls):
        out[f.name] = f.default_factory() if f.default is MISSING else f.default
    return out


class _DictConfigMixin:
    """Round-trippable dict conversion shared by the pipeline configs."""

    def to_dict(self) -> dict:
        """Nested plain-dict form (JSON-serializable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild a config from :meth:`to_dict` output; unknown keys
        raise ``TypeError`` so stale configs fail loudly."""
        return cls(**data)


@dataclass
class BeamPipelineConfig(_DictConfigMixin):
    """Simulate -> partition -> extract -> render.

    Attributes
    ----------
    beam : the simulation configuration
    plot_type : octree plot type ('xyz', 'xpxy', 'xpxz', 'pxpypz')
    max_level : octree maximal subdivision level (paper section 2.3)
    capacity : octree split threshold (particles per node)
    threshold_percentile : extraction threshold as a percentile of
        node densities (the paper passes an absolute threshold; the
        percentile form is scale-free across runs)
    volume_resolution : hybrid density volume size (paper: 64)
    image_size : rendered image width/height in pixels
    n_slices : volume slab count
    frame_every : keep every k-th simulation step
    """

    beam: BeamConfig = field(default_factory=BeamConfig)
    plot_type: str = "xyz"
    max_level: int = 6
    capacity: int = 64
    threshold_percentile: float = 60.0
    volume_resolution: int = 64
    image_size: int = 192
    n_slices: int = 48
    frame_every: int = 5

    @classmethod
    def from_dict(cls, data: dict) -> "BeamPipelineConfig":
        """Rebuild from :meth:`to_dict` output, re-inflating the nested
        :class:`BeamConfig` (tuple fields survive a JSON round trip as
        lists and are coerced back)."""
        data = dict(data)
        beam = data.get("beam")
        if isinstance(beam, dict):
            beam = dict(beam)
            if isinstance(beam.get("sigmas"), list):
                beam["sigmas"] = tuple(beam["sigmas"])
            if isinstance(beam.get("sc_grid"), list):
                beam["sc_grid"] = tuple(beam["sc_grid"])
            if isinstance(beam.get("lattice"), dict):
                from repro.beams.scenario.spec import LatticeSpec

                beam["lattice"] = LatticeSpec.from_dict(beam["lattice"])
            data["beam"] = BeamConfig(**beam)
        return cls(**data)


@dataclass
class FieldLinePipelineConfig(_DictConfigMixin):
    """Mesh -> fields -> seed -> strips -> render.

    Attributes
    ----------
    n_cells : accelerator structure cells (3 or 12 in the paper)
    n_xy, n_z_per_unit : mesh resolution
    use_solver : run the time-domain solver (True) or evaluate the
        analytic standing-wave mode (False, much faster)
    solve_cells_per_unit : FDTD grid resolution
    solve_duration : simulated time before taking the snapshot
    field : 'E' or 'B'
    total_lines : lines to pre-integrate (section 3.2)
    line_width : strip width in world units
    image_size : rendered image width/height in pixels
    """

    n_cells: int = 3
    n_xy: int = 6
    n_z_per_unit: float = 6.0
    use_solver: bool = False
    solve_cells_per_unit: float = 8.0
    solve_duration: float = 6.0
    field: str = "E"
    total_lines: int = 120
    line_width: float = 0.03
    image_size: int = 192
