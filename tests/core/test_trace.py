"""The structured-tracing subsystem: spans, counters, merge, export."""

import json
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.dataset import as_dataset
from repro.core.trace import (
    Tracer,
    capture,
    count,
    format_report,
    gauge,
    get_tracer,
    load_trace,
    span,
)


class TestSpans:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("stage"):
            pass
        assert t.spans == {}

    def test_single_span(self):
        t = Tracer(enabled=True)
        with t.span("stage", n=7):
            pass
        assert "stage" in t.spans
        stats = t.spans["stage"]
        assert stats["count"] == 1
        assert stats["wall"] >= 0.0
        assert stats["attrs"]["n"] == 7

    def test_nested_spans_join_paths(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        assert set(t.spans) == {"outer", "outer/inner"}
        assert t.spans["outer/inner"]["count"] == 2

    def test_span_stack_unwinds_on_exception(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("outer"):
                with t.span("inner"):
                    raise ValueError("boom")
        assert t.current_path() == ""
        # both spans were still recorded on the way out
        assert set(t.spans) == {"outer", "outer/inner"}

    def test_repeated_span_aggregates(self):
        t = Tracer(enabled=True)
        for _ in range(5):
            with t.span("step"):
                pass
        assert t.spans["step"]["count"] == 5
        assert t.spans["step"]["max_wall"] <= t.spans["step"]["wall"]


class TestCountersAndGauges:
    def test_count_accumulates(self):
        t = Tracer(enabled=True)
        t.count("items", 3)
        t.count("items", 4)
        assert t.counters["items"] == 7

    def test_gauge_overwrites(self):
        t = Tracer(enabled=True)
        t.gauge("level", 1.5)
        t.gauge("level", 2.5)
        assert t.gauges["level"] == 2.5

    def test_module_helpers_hit_global_tracer(self):
        with capture(enabled=True) as t:
            with span("work"):
                count("widgets", 2)
            gauge("depth", 3)
        assert t.spans["work"]["count"] == 1
        assert t.counters["widgets"] == 2
        assert t.gauges["depth"] == 3


class TestCapture:
    def test_capture_isolates_and_restores(self):
        before = get_tracer()
        with capture(enabled=True) as t:
            assert get_tracer() is t
            count("inside", 1)
        assert get_tracer() is before
        assert "inside" not in before.counters

    def test_capture_disabled(self):
        with capture(enabled=False) as t:
            with span("ignored"):
                count("ignored", 1)
        assert t.spans == {}
        assert t.counters == {}


def _worker_chunk(args):
    """Top-level so ProcessPoolExecutor can pickle it under spawn."""
    chunk_id, n, trace_enabled = args
    with capture(enabled=trace_enabled) as tracer:
        with span("chunk", chunk=chunk_id):
            count("items_processed", n)
    return tracer.snapshot()


class TestMerge:
    def test_merge_counters_across_process_pool(self):
        parent = Tracer(enabled=True)
        tasks = [(i, 10 * (i + 1), True) for i in range(3)]
        with ProcessPoolExecutor(max_workers=2) as pool:
            snaps = list(pool.map(_worker_chunk, tasks))
        for snap in snaps:
            parent.merge(snap, prefix="pool")
        assert parent.counters["items_processed"] == 10 + 20 + 30
        assert parent.spans["pool/chunk"]["count"] == 3

    def test_merge_without_prefix(self):
        a = Tracer(enabled=True)
        b = Tracer(enabled=True)
        with a.span("stage"):
            pass
        with b.span("stage"):
            pass
        a.merge(b.snapshot())
        assert a.spans["stage"]["count"] == 2

    def test_merge_takes_max_of_gauges(self):
        a = Tracer(enabled=True)
        b = Tracer(enabled=True)
        a.gauge("peak", 1.0)
        b.gauge("peak", 5.0)
        a.merge(b.snapshot())
        assert a.gauges["peak"] == 5.0


class TestExport:
    def test_json_round_trip(self, tmp_path):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner", n=4):
                t.count("things", 9)
        t.gauge("size", 2.0)
        path = tmp_path / "trace.json"
        t.save(path)
        doc = load_trace(path)
        assert doc["version"] == 1
        assert set(doc["spans"]) == {"outer", "outer/inner"}
        assert doc["counters"]["things"] == 9
        assert doc["gauges"]["size"] == 2.0
        # and the document is plain JSON all the way down
        json.dumps(doc)

    def test_format_report_lists_stages_and_counters(self):
        t = Tracer(enabled=True)
        with t.span("simulate"):
            with t.span("transport"):
                pass
        t.count("particles_stepped", 1000)
        t.count("remote_bytes_sent", 2048)
        text = format_report(t.to_dict())
        assert "simulate" in text
        assert "transport" in text
        assert "particles_stepped" in text
        assert "KB" in text  # *bytes counters humanized

    def test_snapshot_is_detached(self):
        t = Tracer(enabled=True)
        with t.span("stage"):
            pass
        snap = t.snapshot()
        snap["spans"]["stage"]["count"] = 999
        assert t.spans["stage"]["count"] == 1


class TestDeprecatedEntryPoints:
    def test_partition_parallel_warns_and_matches(self):
        from repro.octree.parallel import partition_parallel
        from repro.octree.partition import partition

        rng = np.random.default_rng(0)
        particles = rng.normal(0.0, 0.4, (2000, 6))
        with pytest.warns(DeprecationWarning):
            old = partition_parallel(particles, "xyz", max_level=4,
                                     capacity=32, n_workers=2)
        new = partition(as_dataset(particles), "xyz", max_level=4, capacity=32, workers=2)
        assert len(old.nodes) == len(new.nodes)
        np.testing.assert_array_equal(old.particles, new.particles)

    def test_seed_batched_warns(self, structure3, mode3, e_sampler):
        from repro.fieldlines.parallel_seeding import (
            seed_density_proportional_batched,
        )

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            seed_density_proportional_batched(
                structure3.mesh, e_sampler, total_lines=4, batch_size=2,
                max_steps=30, rng=np.random.default_rng(0),
            )
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_partition_workers_param_merges_serial_and_parallel(self):
        from repro.octree.partition import partition

        rng = np.random.default_rng(1)
        particles = rng.normal(0.0, 0.4, (2000, 6))
        serial = partition(as_dataset(particles), "xyz", max_level=4, capacity=32)
        par = partition(as_dataset(particles), "xyz", max_level=4, capacity=32, workers=2)
        assert len(serial.nodes) == len(par.nodes)
        np.testing.assert_array_equal(serial.particles, par.particles)


class TestPipelineTracing:
    def test_beam_pipeline_emits_stage_spans(self):
        from repro.core.config import BeamPipelineConfig
        from repro.core.pipeline import beam_pipeline

        config = BeamPipelineConfig(frame_every=5)
        config.beam.n_particles = 1500
        config.beam.n_cells = 1
        with capture(enabled=True) as t:
            beam_pipeline(config, render=False)
        for stage in ("simulate", "partition", "extract"):
            assert stage in t.spans, f"missing stage span {stage!r}"
        assert t.counters["particles_stepped"] > 0
        assert t.counters["particles_routed"] > 0
