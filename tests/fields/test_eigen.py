"""Eigenmode finding by impulse response."""

import numpy as np
import pytest

from repro.fields.eigen import ResonanceFinder
from repro.fields.geometry import make_pillbox
from repro.fields.modes import pillbox_tm010
from repro.fields.solver import TimeDomainSolver


@pytest.fixture(scope="module")
def rung_finder():
    """A pillbox kicked and rung once, shared by the spectral tests."""
    pb = make_pillbox(radius=1.0, length=1.2, n_xy=6, n_z_per_unit=6)
    solver = TimeDomainSolver(pb, cells_per_unit=14.0)
    finder = ResonanceFinder(solver)
    finder.kick()
    finder.ring(120.0)
    return finder


class TestResonances:
    def test_tm010_found(self, rung_finder):
        """The fundamental must match the analytic TM010 frequency to
        within the stairstep discretization error."""
        peaks = rung_finder.resonances(1)
        f_analytic = pillbox_tm010(1.0).frequency
        assert abs(peaks[0] - f_analytic) / f_analytic < 0.06

    def test_tm0n0_ladder(self, rung_finder):
        """The radially smooth kick excites the TM0n0 family: peak
        ratios follow the zeros of J0 (j02/j01 = 2.295...)."""
        from scipy.special import jn_zeros

        peaks = np.sort(rung_finder.resonances(2))
        expected_ratio = jn_zeros(0, 2)[1] / jn_zeros(0, 2)[0]
        assert peaks[1] / peaks[0] == pytest.approx(expected_ratio, rel=0.08)

    def test_spectrum_shape(self, rung_finder):
        freqs, spec = rung_finder.spectrum()
        assert len(freqs) == len(spec)
        assert np.all(spec >= 0)
        assert freqs[0] == 0.0

    def test_requires_ring_before_spectrum(self):
        pb = make_pillbox(radius=1.0, length=1.0, n_xy=4, n_z_per_unit=4)
        finder = ResonanceFinder(TimeDomainSolver(pb, cells_per_unit=8.0))
        with pytest.raises(RuntimeError):
            finder.spectrum()

    def test_drive_disabled(self):
        pb = make_pillbox(radius=1.0, length=1.0, n_xy=4, n_z_per_unit=4)
        solver = TimeDomainSolver(pb, cells_per_unit=8.0, drive_amplitude=5.0)
        ResonanceFinder(solver)
        assert solver.drive_amplitude == 0.0

    def test_noise_kick_option(self):
        pb = make_pillbox(radius=1.0, length=1.0, n_xy=4, n_z_per_unit=4)
        finder = ResonanceFinder(TimeDomainSolver(pb, cells_per_unit=8.0))
        finder.kick(smooth=False, seed=1)
        assert np.abs(finder.solver.ez).max() > 0

    def test_custom_probes(self):
        pb = make_pillbox(radius=1.0, length=1.0, n_xy=4, n_z_per_unit=4)
        probes = np.array([[0.0, 0.0, 0.5]])
        finder = ResonanceFinder(
            TimeDomainSolver(pb, cells_per_unit=8.0), probes=probes
        )
        finder.kick()
        finder.ring(10.0)
        assert len(finder.signal) > 0
        assert finder.signal[0].shape == (1,)


class TestModeProfile:
    def test_tm010_profile_peaks_on_axis(self, rung_finder):
        """The extracted TM010 profile must peak on the axis and decay
        toward the wall (J0 shape)."""
        f0 = rung_finder.resonances(1)[0]
        profile = rung_finder.mode_profile(f0, duration=30.0)
        mesh = rung_finder.solver.structure.mesh
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        inner = profile[r < 0.25]
        outer = profile[r > 0.85]
        assert inner.mean() > 3.0 * outer.mean()
