"""The hybrid compositor (paper sections 2.1 and 2.4).

``HybridRenderer`` turns a :class:`HybridFrame` plus the linked
transfer functions into an image:

1. the density volume is classified through the volume transfer
   function into an RGBA texture and composited with view-aligned
   slices (the texture-hardware path);
2. the halo points are subsampled by the point transfer function's
   per-density fraction, colored, and depth-interleaved with the
   volume slabs.

``render_volume_part`` / ``render_point_part`` expose the two passes
separately, reproducing the decomposition of the paper's Figure 4.
"""

from __future__ import annotations

import numpy as np

from repro.core.trace import span
from repro.hybrid.representation import HybridFrame
from repro.hybrid.transfer import DensityNormalizer, LinkedTransferFunctions
from repro.render.camera import Camera
from repro.render.colormap import Colormap, get_colormap
from repro.render.framebuffer import Framebuffer
from repro.render.points import (
    gaussian_splat_fragments,
    point_fragments,
    select_fraction,
)
from repro.render.volume import render_mixed

__all__ = ["HybridRenderer"]


class HybridRenderer:
    """Renders hybrid frames with linked transfer functions.

    Parameters
    ----------
    transfer : the linked volume/point transfer function pair
    point_colormap : colormap for explicit points (sampled at the
        point's normalized density)
    point_alpha : opacity of each point sprite
    point_size : sprite edge length in pixels
    n_slices : view-aligned slab count for the volume pass
    normalizer_mode : 'log' (default) or 'linear' density normalization
    cache : frame-geometry cache policy forwarded to
        :func:`repro.render.volume.render_mixed` -- ``None`` (default)
        shares the process-global cache so animation orbits and
        transfer-function edits reuse slice geometry across frames,
        ``False`` disables caching, or pass a dedicated
        :class:`repro.render.frame_cache.FrameGeometryCache`
    point_batch_size : project the classified points in slices of this
        many points, handing :func:`render_mixed` a list of fragment
        batches instead of one monolithic stream (the out-of-core
        rendering path: peak memory scales with the batch, not the
        halo).  Classification and subsampling stay global, so the
        drawn subset and the composited image match the unbatched
        renderer.  ``None`` (default) projects everything at once.
    max_density : pin the density normalizer's scale instead of taking
        it from each frame.  Bricked (forest) and animated renders pass
        the global maximum here so every partial image is classified on
        the same scale.  ``None`` (default) normalizes per frame.
    point_mode : 'sprite' (default) draws square point sprites;
        'splat' draws Gaussian splats
        (:func:`repro.render.points.gaussian_splat_fragments`) -- the
        higher quality tier, with per-point footprints scaled by
        normalized density
    splat_sigma : base splat radius (pixels of one standard deviation)
    splat_scale : per-point sigma is ``splat_sigma * (1 + splat_scale
        * t)`` with ``t`` the point's normalized density -- denser
        points splat wider; 0 gives every point the base sigma
    volume_mode : 'auto' (default) composites the adaptive AMR volume
        when the frame carries one (``frame.meta['amr']``), 'flat'
        always uses the uniform grid
    """

    def __init__(
        self,
        transfer: LinkedTransferFunctions | None = None,
        point_colormap: Colormap | str = "electric",
        point_alpha: float = 0.55,
        point_size: int = 1,
        n_slices: int = 64,
        normalizer_mode: str = "log",
        point_color_by: str | None = None,
        cache=None,
        point_batch_size: int | None = None,
        max_density: float | None = None,
        point_mode: str = "sprite",
        splat_sigma: float = 1.5,
        splat_scale: float = 1.0,
        volume_mode: str = "auto",
    ):
        self.transfer = transfer or LinkedTransferFunctions()
        self.point_colormap = (
            get_colormap(point_colormap)
            if isinstance(point_colormap, str)
            else point_colormap
        )
        self.point_alpha = float(point_alpha)
        self.point_size = int(point_size)
        self.n_slices = int(n_slices)
        self.normalizer_mode = normalizer_mode
        # color points by a carried per-point attribute instead of
        # density -- the dynamic property coloring of paper section 2.5
        self.point_color_by = point_color_by
        self.cache = cache
        if point_batch_size is not None and int(point_batch_size) < 1:
            raise ValueError("point_batch_size must be >= 1")
        self.point_batch_size = None if point_batch_size is None else int(point_batch_size)
        if max_density is not None and float(max_density) <= 0.0:
            raise ValueError("max_density must be > 0")
        self.max_density = None if max_density is None else float(max_density)
        if point_mode not in ("sprite", "splat"):
            raise ValueError("point_mode must be 'sprite' or 'splat'")
        self.point_mode = point_mode
        if float(splat_sigma) <= 0.0:
            raise ValueError("splat_sigma must be > 0")
        self.splat_sigma = float(splat_sigma)
        if float(splat_scale) < 0.0:
            raise ValueError("splat_scale must be >= 0")
        self.splat_scale = float(splat_scale)
        if volume_mode not in ("auto", "flat"):
            raise ValueError("volume_mode must be 'auto' or 'flat'")
        self.volume_mode = volume_mode

    # ------------------------------------------------------------------
    def _frame_amr(self, frame: HybridFrame):
        """The frame's adaptive volume, when present and enabled."""
        if self.volume_mode != "auto":
            return None
        return frame.meta.get("amr")

    def _normalizer(self, frame: HybridFrame) -> DensityNormalizer:
        dmax = self.max_density
        if dmax is None:
            dmax = frame.max_density()
            amr = self._frame_amr(frame)
            if amr is not None:
                # refined cells resolve peaks the flat grid averages
                # away; classify on the true maximum so they don't clip
                dmax = max(dmax, amr.max_density())
        return DensityNormalizer(max(dmax, 1e-300), mode=self.normalizer_mode)

    def classify_volume(self, frame: HybridFrame):
        """Apply the volume transfer function.

        Returns an (X, Y, Z, 4) RGBA texture for flat frames, or an
        :class:`repro.render.amr.AmrRgbaVolume` (classified per-brick
        cells) when the frame carries an adaptive volume and
        ``volume_mode='auto'``.
        """
        norm = self._normalizer(frame)
        amr = self._frame_amr(frame)
        if amr is not None:
            from repro.render.amr import AmrRgbaVolume

            t = norm(amr.data.astype(np.float64))
            return AmrRgbaVolume(amr, self.transfer.volume_rgba(t))
        t = norm(frame.volume.astype(np.float64))
        return self.transfer.volume_rgba(t)

    def classified_points(self, frame: HybridFrame):
        """Subsample and color the halo points.

        Returns (positions (K, 3), rgba (K, 4)); the kept subset is the
        deterministic low-discrepancy selection of
        :func:`repro.render.points.select_fraction`, so "three out of
        every four points are drawn" at fraction 0.75.
        """
        pos, rgba, _ = self._classify_points(frame)
        return pos, rgba

    def _classify_points(self, frame: HybridFrame):
        """Like :meth:`classified_points` plus the kept points'
        normalized densities (drives per-point splat radii)."""
        if frame.n_points == 0:
            return np.empty((0, 3)), np.empty((0, 4)), np.empty(0)
        norm = self._normalizer(frame)
        t = norm(frame.point_densities.astype(np.float64))
        fractions = self.transfer.point_fraction(t)
        keep = select_fraction(frame.n_points, fractions)
        pos = frame.points[keep].astype(np.float64)
        rgba = np.empty((len(pos), 4))
        if self.point_color_by is not None:
            try:
                values = frame.attributes[self.point_color_by]
            except KeyError:
                raise KeyError(
                    f"frame carries no attribute {self.point_color_by!r}; "
                    f"available: {', '.join(sorted(frame.attributes)) or 'none'}"
                ) from None
            v = values[keep].astype(np.float64)
            lo, hi = (float(values.min()), float(values.max())) if len(values) else (0, 1)
            color_t = (v - lo) / max(hi - lo, 1e-300)
        else:
            color_t = t[keep]
        rgba[:, :3] = self.point_colormap(color_t)
        rgba[:, 3] = self.point_alpha
        return pos, rgba, t[keep]

    def _point_sigmas(self, t: np.ndarray) -> np.ndarray:
        """Per-point splat sigmas from normalized densities."""
        return self.splat_sigma * (1.0 + self.splat_scale * np.asarray(t))

    def _project_points(
        self,
        camera: Camera,
        pos: np.ndarray,
        rgba: np.ndarray,
        sigmas: np.ndarray | None = None,
    ):
        """Project classified points to fragments, honoring
        ``point_batch_size`` (a list of per-batch fragment streams in
        point order, which ``render_mixed`` merges losslessly)."""
        if len(pos) == 0:
            return None

        def frags(a, b):
            if self.point_mode == "splat":
                sig = (
                    self.splat_sigma
                    if sigmas is None
                    else sigmas[a:b]
                )
                return gaussian_splat_fragments(
                    camera, pos[a:b], rgba[a:b], sig
                )
            return point_fragments(
                camera, pos[a:b], rgba[a:b], point_size=self.point_size
            )

        batch = self.point_batch_size
        if batch is None or len(pos) <= batch:
            return frags(0, len(pos))
        return [frags(a, a + batch) for a in range(0, len(pos), batch)]

    # ------------------------------------------------------------------
    def render(self, frame: HybridFrame, camera: Camera | None = None) -> Framebuffer:
        """Full hybrid rendering (volume + interleaved points)."""
        camera = camera or Camera.fit_bounds(
            frame.lo, frame.hi, width=256, height=256
        )
        with span("classify_volume"):
            rgba_volume = self.classify_volume(frame)
        with span("classify_points", n_points=frame.n_points):
            pos, rgba, t = self._classify_points(frame)
            sigmas = self._point_sigmas(t) if self.point_mode == "splat" else None
            frags = self._project_points(camera, pos, rgba, sigmas)
        return render_mixed(
            camera,
            rgba_volume,
            frame.lo,
            frame.hi,
            point_fragments=frags,
            n_slices=self.n_slices,
            cache=self.cache,
        )

    def render_volume_part(
        self, frame: HybridFrame, camera: Camera | None = None
    ) -> Framebuffer:
        """The volume-rendered region alone (Figure 4 top)."""
        camera = camera or Camera.fit_bounds(frame.lo, frame.hi, width=256, height=256)
        rgba_volume = self.classify_volume(frame)
        return render_mixed(
            camera, rgba_volume, frame.lo, frame.hi, n_slices=self.n_slices,
            cache=self.cache,
        )

    def render_point_part(
        self, frame: HybridFrame, camera: Camera | None = None, opaque: bool = False
    ) -> Framebuffer:
        """The point-rendered region alone (Figure 4 bottom).

        ``opaque=True`` draws fully opaque points, as the paper does
        "so they are more visible"."""
        camera = camera or Camera.fit_bounds(frame.lo, frame.hi, width=256, height=256)
        pos, rgba, t = self._classify_points(frame)
        if opaque and len(rgba):
            rgba = rgba.copy()
            rgba[:, 3] = 1.0
        sigmas = self._point_sigmas(t) if self.point_mode == "splat" else None
        frags = self._project_points(camera, pos, rgba, sigmas)
        return render_mixed(
            camera, None, frame.lo, frame.hi, point_fragments=frags,
            n_slices=self.n_slices,
        )
