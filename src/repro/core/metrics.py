"""Measurement helpers the benches report.

Size accounting and frame-rate estimates; image metrics live in
:mod:`repro.render.image`.
"""

from __future__ import annotations

import time

__all__ = ["size_report", "fps_estimate", "human_bytes", "Timer"]

_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]


def human_bytes(n: float) -> str:
    """Render a byte count the way the paper does (5 GB, 48 GB, 26 TB)."""
    n = float(n)
    for unit in _UNITS:
        if abs(n) < 1024.0 or unit == _UNITS[-1]:
            return f"{n:.3g} {unit}"
        n /= 1024.0
    return f"{n:.3g} PB"


def size_report(raw_bytes: int, reduced_bytes: int, label: str = "") -> dict:
    """Raw-vs-reduced storage comparison."""
    return {
        "label": label,
        "raw_bytes": int(raw_bytes),
        "reduced_bytes": int(reduced_bytes),
        "raw_human": human_bytes(raw_bytes),
        "reduced_human": human_bytes(reduced_bytes),
        "reduction_factor": raw_bytes / max(reduced_bytes, 1),
    }


def fps_estimate(render_fn, repeats: int = 3) -> float:
    """Frames per second of a zero-argument render callable (best of
    ``repeats``, matching how interactive frame rates are quoted)."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        render_fn()
        best = min(best, time.perf_counter() - t0)
    return 1.0 / best if best > 0 else float("inf")


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0
