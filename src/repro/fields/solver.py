"""Courant-limited time-domain electromagnetic solver.

The stand-in for Tau3P (paper ref [16]): an explicit leapfrog
finite-difference time-domain (Yee) solver on a Cartesian staggered
grid that embeds the accelerator structure (stairstep PEC walls, the
same boundary treatment first-generation time-domain codes used).

"To achieve the needed accuracy, the simulations must not proceed
faster than electromagnetic information could physically flow through
mesh elements.  To satisfy the Courant Condition, simulating 100
nanoseconds in the real world requires millions of time steps."
:func:`courant_dt` is that constraint; the benches reproduce the
steps-per-nanosecond arithmetic at our scale.

RF power enters through *soft sources* in the input-port regions and
is absorbed by a conductive sponge in output-port regions, emulating
reflection/transmission through open ports.

Units: c = eps0 = mu0 = 1.
"""

from __future__ import annotations

import numpy as np

from repro.fields.geometry import AcceleratorStructure
from repro.fields.mesh import HexMesh

__all__ = ["courant_dt", "TimeDomainSolver"]


def courant_dt(dx: float, dy: float, dz: float, cfl: float = 0.99) -> float:
    """Largest stable Yee time step for the given cell size."""
    if min(dx, dy, dz) <= 0:
        raise ValueError("cell sizes must be positive")
    if not 0 < cfl <= 1:
        raise ValueError("cfl must be in (0, 1]")
    return cfl / np.sqrt(1.0 / dx**2 + 1.0 / dy**2 + 1.0 / dz**2)


class TimeDomainSolver:
    """Yee FDTD inside an accelerator structure.

    Parameters
    ----------
    structure : geometry (walls, ports) the fields live in
    cells_per_unit : grid resolution (cells per unit length)
    cfl : Courant number (fraction of the stability limit)
    drive_frequency : port drive in cycles per unit time; default is
        the pillbox TM010 frequency of the structure's cells
    drive_amplitude : soft-source strength
    sponge_sigma : conductivity of the output-port absorber
    """

    def __init__(
        self,
        structure: AcceleratorStructure,
        cells_per_unit: float = 10.0,
        cfl: float = 0.99,
        drive_frequency: float | None = None,
        drive_amplitude: float = 1.0,
        sponge_sigma: float = 2.0,
    ):
        self.structure = structure
        lo, hi = structure.bounds()
        margin = 0.05 * float(np.max(hi - lo))
        self.lo = lo - margin
        self.hi = hi + margin
        span = self.hi - self.lo
        self.shape = tuple(
            max(int(np.ceil(cells_per_unit * s)), 4) for s in span
        )
        self.d = span / np.array(self.shape)
        self.dt = courant_dt(*self.d, cfl=cfl)
        self.time = 0.0
        self.step_count = 0

        nx, ny, nz = self.shape
        self.ex = np.zeros((nx, ny + 1, nz + 1))
        self.ey = np.zeros((nx + 1, ny, nz + 1))
        self.ez = np.zeros((nx + 1, ny + 1, nz))
        self.hx = np.zeros((nx + 1, ny, nz))
        self.hy = np.zeros((nx, ny + 1, nz))
        self.hz = np.zeros((nx, ny, nz + 1))

        if drive_frequency is None:
            from repro.fields.modes import pillbox_tm010

            mode = pillbox_tm010(structure.profile.cell_radius)
            drive_frequency = mode.frequency
        self.drive_frequency = float(drive_frequency)
        self.drive_amplitude = float(drive_amplitude)
        self.sponge_sigma = float(sponge_sigma)

        self._build_masks()

    # ------------------------------------------------------------------
    # grids and masks
    # ------------------------------------------------------------------
    def _component_points(self, which: str) -> np.ndarray:
        """Sample locations of one staggered component, flattened."""
        nx, ny, nz = self.shape
        off = {
            "ex": (0.5, 0.0, 0.0, (nx, ny + 1, nz + 1)),
            "ey": (0.0, 0.5, 0.0, (nx + 1, ny, nz + 1)),
            "ez": (0.0, 0.0, 0.5, (nx + 1, ny + 1, nz)),
            "hx": (0.0, 0.5, 0.5, (nx + 1, ny, nz)),
            "hy": (0.5, 0.0, 0.5, (nx, ny + 1, nz)),
            "hz": (0.5, 0.5, 0.0, (nx, ny, nz + 1)),
        }[which]
        ox, oy, oz, shape = off
        xs = self.lo[0] + (np.arange(shape[0]) + ox) * self.d[0]
        ys = self.lo[1] + (np.arange(shape[1]) + oy) * self.d[1]
        zs = self.lo[2] + (np.arange(shape[2]) + oz) * self.d[2]
        gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
        return np.stack([gx, gy, gz], axis=-1).reshape(-1, 3), shape

    def component_origin(self, which: str) -> np.ndarray:
        off = {
            "ex": (0.5, 0.0, 0.0),
            "ey": (0.0, 0.5, 0.0),
            "ez": (0.0, 0.0, 0.5),
            "hx": (0.0, 0.5, 0.5),
            "hy": (0.5, 0.0, 0.5),
            "hz": (0.5, 0.5, 0.0),
        }[which]
        return self.lo + np.array(off) * self.d

    def _build_masks(self) -> None:
        """Vacuum masks per E component and port drive/sponge masks."""
        self._mask = {}
        for which in ("ex", "ey", "ez"):
            pts, shape = self._component_points(which)
            self._mask[which] = self.structure.inside(pts).reshape(shape)
        # drive: Ez sample points in input-port regions
        pts, shape = self._component_points("ez")
        drive = np.zeros(shape, dtype=bool)
        sponge = np.zeros(shape)
        for port in self.structure.ports:
            region = self.structure.port_region(port, pts).reshape(shape)
            if port.kind == "input":
                drive |= region
            else:
                sponge += self.sponge_sigma * region
        self._drive_mask = drive
        self._sponge = sponge
        self._n_drive = int(drive.sum())

    # ------------------------------------------------------------------
    # time stepping
    # ------------------------------------------------------------------
    def _source_value(self, t: float) -> float:
        """Soft source amplitude with a 2-cycle turn-on ramp."""
        w = 2.0 * np.pi * self.drive_frequency
        ramp_time = 2.0 / self.drive_frequency
        ramp = min(t / ramp_time, 1.0)
        return self.drive_amplitude * ramp * np.sin(w * t)

    def step(self) -> None:
        """One leapfrog step: H half-behind E, standard Yee ordering."""
        dt = self.dt
        dx, dy, dz = self.d
        ex, ey, ez = self.ex, self.ey, self.ez
        hx, hy, hz = self.hx, self.hy, self.hz

        # -- update H from curl E -------------------------------------
        hx -= dt * (
            np.diff(ez, axis=1) / dy - np.diff(ey, axis=2) / dz
        )
        hy -= dt * (
            np.diff(ex, axis=2) / dz - np.diff(ez, axis=0) / dx
        )
        hz -= dt * (
            np.diff(ey, axis=0) / dx - np.diff(ex, axis=1) / dy
        )

        # -- update E from curl H (interior nodes only) ---------------
        ex[:, 1:-1, 1:-1] += dt * (
            np.diff(hz[:, :, 1:-1], axis=1) / dy - np.diff(hy[:, 1:-1, :], axis=2) / dz
        )
        ey[1:-1, :, 1:-1] += dt * (
            np.diff(hx[1:-1, :, :], axis=2) / dz - np.diff(hz[:, :, 1:-1], axis=0) / dx
        )
        ez[1:-1, 1:-1, :] += dt * (
            np.diff(hy[:, 1:-1, :], axis=0) / dx - np.diff(hx[1:-1, :, :], axis=1) / dy
        )

        # -- port drive (soft source on Ez) ----------------------------
        t_mid = self.time + 0.5 * dt
        if self._n_drive:
            ez[self._drive_mask] += dt * self._source_value(t_mid)

        # -- output-port sponge (conductive absorber) ------------------
        if self.sponge_sigma > 0.0:
            ez *= 1.0 / (1.0 + dt * self._sponge)

        # -- PEC walls: tangential E vanishes outside the vacuum ------
        ex *= self._mask["ex"]
        ey *= self._mask["ey"]
        ez *= self._mask["ez"]

        self.time += dt
        self.step_count += 1

    def run(self, n_steps: int, on_step=None, every: int = 1) -> None:
        """Advance ``n_steps``; ``on_step(solver)`` fires every
        ``every`` steps."""
        for _ in range(int(n_steps)):
            self.step()
            if on_step is not None and self.step_count % every == 0:
                on_step(self)

    def steps_for(self, duration: float) -> int:
        """Time steps needed to simulate ``duration`` time units --
        the Courant-condition arithmetic of the paper's section 3."""
        return int(np.ceil(duration / self.dt))

    # ------------------------------------------------------------------
    # diagnostics and output
    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Total field energy 0.5 integral(E^2 + H^2)."""
        cell = float(np.prod(self.d))
        return 0.5 * cell * float(
            (self.ex**2).sum()
            + (self.ey**2).sum()
            + (self.ez**2).sum()
            + (self.hx**2).sum()
            + (self.hy**2).sum()
            + (self.hz**2).sum()
        )

    def sample_e(self, points: np.ndarray) -> np.ndarray:
        """Vector E at arbitrary points (component-wise trilinear)."""
        from repro.fields.sampling import sample_staggered

        return np.column_stack(
            [
                sample_staggered(self.ex, self.component_origin("ex"), self.d, points),
                sample_staggered(self.ey, self.component_origin("ey"), self.d, points),
                sample_staggered(self.ez, self.component_origin("ez"), self.d, points),
            ]
        )

    def sample_b(self, points: np.ndarray) -> np.ndarray:
        """Vector B (= H in these units) at arbitrary points."""
        from repro.fields.sampling import sample_staggered

        return np.column_stack(
            [
                sample_staggered(self.hx, self.component_origin("hx"), self.d, points),
                sample_staggered(self.hy, self.component_origin("hy"), self.d, points),
                sample_staggered(self.hz, self.component_origin("hz"), self.d, points),
            ]
        )

    def fields_on_mesh(self, mesh: HexMesh | None = None) -> HexMesh:
        """Sample E and B onto a hex mesh's vertices (default: the
        structure's own mesh), attaching fields "E" and "B".  This is
        the raw per-time-step payload whose size the paper's 26 TB
        storage argument counts."""
        mesh = mesh if mesh is not None else self.structure.mesh
        mesh.set_field("E", self.sample_e(mesh.vertices))
        mesh.set_field("B", self.sample_b(mesh.vertices))
        return mesh
