"""Disk-based extraction: 'discarded particles are never read'."""

import numpy as np
import pytest

from repro.core.dataset import as_dataset
from repro.octree.disk_extraction import (
    extract_from_disk,
    node_bounds,
    volume_from_nodes,
)
from repro.octree.extraction import extract
from repro.octree.format import partition_paths, save_partitioned
from repro.octree.octree import Octree
from repro.octree.partition import partition


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    rng = np.random.default_rng(31)
    particles = np.vstack(
        [rng.normal(0, 0.3, (8000, 6)), rng.normal(0, 1.5, (500, 6))]
    )
    pf = partition(as_dataset(particles), "xyz", max_level=5, capacity=32, step=4)
    stem = tmp_path_factory.mktemp("disk") / "frame"
    save_partitioned(pf, stem)
    return pf, stem


class TestNodeBounds:
    def test_matches_octree_method(self, rng):
        coords = rng.random((500, 3))
        tree = Octree(coords, max_level=4, capacity=16)
        for i in range(0, tree.n_nodes, max(tree.n_nodes // 20, 1)):
            lo_a, hi_a = tree.node_bounds(i)
            lo_b, hi_b = node_bounds(
                int(tree.nodes["level"][i]), int(tree.nodes["key"][i]),
                tree.lo, tree.hi,
            )
            assert np.allclose(lo_a, lo_b)
            assert np.allclose(hi_a, hi_b)


class TestVolumeFromNodes:
    def test_mass_conserved(self, saved):
        pf, _ = saved
        vol = volume_from_nodes(pf.nodes, pf.lo, pf.hi, 16)
        span = pf.hi - pf.lo
        cell_volume = float(np.prod(span)) / 16**3
        total = vol.sum() * cell_volume
        assert total == pytest.approx(pf.n_particles, rel=1e-6)

    def test_density_hotspot_at_core(self, saved):
        """The dense beam core must dominate the node-rasterized
        volume just as it does the particle-binned one."""
        pf, _ = saved
        vol = volume_from_nodes(pf.nodes, pf.lo, pf.hi, 16)
        peak = np.unravel_index(vol.argmax(), vol.shape)
        # the core sits at the box center (beam centered on origin)
        assert all(4 <= p <= 11 for p in peak)

    def test_agrees_with_particle_binning(self, saved):
        """Node rasterization approximates the particle-binned volume
        (they sample the same underlying density)."""
        pf, _ = saved
        from_nodes = volume_from_nodes(pf.nodes, pf.lo, pf.hi, 12)
        from_particles = extract(pf, 0.0, volume_resolution=12).volume
        # compare smoothed mass distribution: correlation must be high
        a = from_nodes.ravel()
        b = from_particles.astype(np.float64).ravel()
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.95


class TestExtractFromDisk:
    def test_points_match_memory_extraction(self, saved):
        pf, stem = saved
        thr = float(np.percentile(pf.nodes["density"], 60))
        on_disk = extract_from_disk(stem, thr, volume_resolution=12)
        in_memory = extract(pf, thr, volume_resolution=12)
        assert on_disk.n_points == in_memory.n_points
        assert np.array_equal(on_disk.points, in_memory.points)
        assert np.array_equal(on_disk.point_densities, in_memory.point_densities)
        assert on_disk.step == 4
        assert on_disk.plot_type == "xyz"

    def test_never_reads_discarded_particles(self, saved, tmp_path):
        """The paper's I/O claim, enforced: truncate the particle file
        right after the halo prefix and extraction still succeeds."""
        pf, stem = saved
        thr = float(np.percentile(pf.nodes["density"], 60))
        cutoff = pf.density_cutoff_index(thr)

        # copy the partition, then chop the particle file
        import shutil

        new_stem = tmp_path / "chopped"
        for suffix in (".nodes", ".particles"):
            shutil.copy(
                stem.with_suffix(suffix), new_stem.with_suffix(suffix)
            )
        parts_path = partition_paths(new_stem)[1]
        from repro.octree.format import _PARTS_HEADER

        parts_path.write_bytes(
            parts_path.read_bytes()[: _PARTS_HEADER.size + cutoff * 48]
        )

        h = extract_from_disk(new_stem, thr, volume_resolution=8)
        assert h.n_points == cutoff
        full = extract_from_disk(stem, thr, volume_resolution=8)
        assert np.array_equal(h.points, full.points)
        assert np.array_equal(h.volume, full.volume)

    def test_zero_threshold(self, saved):
        pf, stem = saved
        h = extract_from_disk(stem, 0.0, volume_resolution=8)
        assert h.n_points == 0
        assert h.volume.sum() > 0  # the volume still covers everything
