"""Packed line storage and compression accounting."""

import numpy as np
import pytest

from repro.fieldlines.compact import compression_report, pack_lines, unpack_lines
from repro.fieldlines.integrate import FieldLine


def _lines(n=5, k=20, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        pts = np.cumsum(rng.uniform(-0.1, 0.1, (k, 3)), axis=0)
        t = np.gradient(pts, axis=0)
        t /= np.linalg.norm(t, axis=1, keepdims=True)
        out.append(
            FieldLine(points=pts, tangents=t, magnitudes=rng.random(k), order=i)
        )
    return out


class TestPackUnpack:
    def test_roundtrip_float32(self):
        lines = _lines()
        back = unpack_lines(pack_lines(lines))
        assert len(back) == len(lines)
        for a, b in zip(lines, back):
            assert np.allclose(a.points, b.points, atol=1e-6)
            assert np.allclose(a.magnitudes, b.magnitudes, atol=1e-6)
            assert b.order == a.order

    def test_roundtrip_quantized(self):
        lines = _lines()
        back = unpack_lines(pack_lines(lines, quantize=True))
        span = np.vstack([l.points for l in lines])
        scale = (span.max(axis=0) - span.min(axis=0)).max()
        for a, b in zip(lines, back):
            assert np.allclose(a.points, b.points, atol=scale / 65000.0 * 2)

    def test_quantized_smaller(self):
        lines = _lines(10, 50)
        assert len(pack_lines(lines, quantize=True)) < len(pack_lines(lines))

    def test_variable_lengths(self):
        rng = np.random.default_rng(1)
        lines = []
        for i, k in enumerate((2, 7, 31)):
            pts = rng.random((k, 3))
            lines.append(
                FieldLine(
                    points=pts,
                    tangents=np.tile([1.0, 0, 0], (k, 1)),
                    magnitudes=np.ones(k),
                )
            )
        back = unpack_lines(pack_lines(lines))
        assert [b.n_points for b in back] == [2, 7, 31]

    def test_empty(self):
        assert unpack_lines(pack_lines([])) == []

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            unpack_lines(b"GARBAGE!" + bytes(64))

    def test_tangents_recomputed_unit(self):
        back = unpack_lines(pack_lines(_lines(2, 10)))
        for line in back:
            norms = np.linalg.norm(line.tangents, axis=1)
            assert np.allclose(norms, 1.0, atol=1e-6)


class TestCompressionReport:
    def test_fields_and_arithmetic(self, structure3, mode3, ordered_lines):
        rep = compression_report(structure3.mesh, ordered_lines.lines, n_time_steps=4)
        assert rep["raw_bytes_per_step"] == structure3.mesh.n_vertices * 48
        assert rep["raw_bytes"] == 4 * rep["raw_bytes_per_step"]
        assert rep["line_bytes"] == 4 * rep["line_bytes_per_step"]
        assert rep["compression_factor"] == pytest.approx(
            rep["raw_bytes"] / rep["line_bytes"]
        )

    def test_larger_mesh_better_ratio(self, ordered_lines):
        """The paper's 25x arises at production mesh sizes: the ratio
        grows linearly with vertex count at fixed line budget."""
        from repro.fields.geometry import make_multicell_structure

        small = make_multicell_structure(3, n_xy=4, n_z_per_unit=4)
        big = make_multicell_structure(3, n_xy=10, n_z_per_unit=10)
        r_small = compression_report(small.mesh, ordered_lines.lines)
        r_big = compression_report(big.mesh, ordered_lines.lines)
        assert (
            r_big["compression_factor"]
            > 3 * r_small["compression_factor"]
        )
