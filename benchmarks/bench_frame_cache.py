"""PERF -- hot-path kernel overhaul: frame cache, batched seeding, PIC.

Three before/after measurements for the cached-geometry renderer, the
batched density-proportional seeder, and the space-charge PIC cycle:

* *frame*: a 64^3 RGBA volume mixed with ~200 k halo points, rendered
  repeatedly from one camera.  Cold = first cached render (geometry
  build + draw), warm = subsequent renders reusing the cached slice
  geometry, uncached = the pre-cache path (geometry rebuilt per call).
  Cached and uncached images must be bit-identical.
* *seeding*: greedy one-line-at-a-time seeding vs the round-based
  batched seeder at several batch sizes, with the density-accuracy
  correlation so the speed/quality trade-off is visible.
* *spacecharge*: a 20-step drift+kick loop through the current solver
  (cached Green's function, bincount deposit, staged FFTs, bounds
  hysteresis) vs a faithful re-implementation of the pre-optimization
  kernels (``np.add.at`` deposit, full-array ``np.fft`` Hockney solve
  with the Green's function rebuilt every step, fancy-indexed gather,
  bounds refit every step) -- the honest before/after for this PR.
  Plus the single-solve cached vs uncached ratio.

Writes ``BENCH_frame_cache.json``; ``scripts/check.sh --perf`` gates
on the recorded speedups.
"""

import time

import numpy as np

from common import record, record_bench, scaled, traced_run

from repro.beams.distributions import PX, PY, PZ
from repro.beams.spacecharge import (
    SpaceChargeSolver,
    clear_green_cache,
    electric_field,
    solve_poisson_open,
)
from repro.fieldlines.seeding import seed_density_proportional
from repro.render.camera import Camera
from repro.render.frame_cache import FrameGeometryCache
from repro.render.points import point_fragments
from repro.render.volume import render_mixed

N_POINTS = scaled(200_000)
N_LINES = scaled(48)
BATCH_SIZES = [4, 8, 16]
N_PARTICLES = scaled(10_000)
N_STEPS = 20
GRID = (64, 64, 64)


# ----------------------------------------------------------------------
# the pre-optimization space-charge kernels, reproduced verbatim from
# the seed implementation (git history) so the "before" arm is honest
def _deposit_base(positions, shape, lo, hi):
    cell = (hi - lo) / (np.array(shape) - 1)
    grid = np.zeros(shape)
    rel = (positions - lo) / cell
    i0 = np.floor(rel).astype(np.int64)
    for ax in range(3):
        i0[:, ax] = np.clip(i0[:, ax], 0, shape[ax] - 2)
    f = np.clip(rel - i0, 0.0, 1.0)
    w = np.ones(len(positions))
    for dx in (0, 1):
        wx = w * (f[:, 0] if dx else 1.0 - f[:, 0])
        for dy in (0, 1):
            wy = wx * (f[:, 1] if dy else 1.0 - f[:, 1])
            for dz in (0, 1):
                wz = wy * (f[:, 2] if dz else 1.0 - f[:, 2])
                np.add.at(grid, (i0[:, 0] + dx, i0[:, 1] + dy, i0[:, 2] + dz), wz)
    return grid


def _gather_base(field, positions, lo, hi):
    comps = field
    nx, ny, nz = comps.shape[1:]
    cell = (hi - lo) / (np.array([nx, ny, nz]) - 1)
    rel = (positions - lo) / cell
    i0 = np.floor(rel).astype(np.int64)
    i0[:, 0] = np.clip(i0[:, 0], 0, nx - 2)
    i0[:, 1] = np.clip(i0[:, 1], 0, ny - 2)
    i0[:, 2] = np.clip(i0[:, 2], 0, nz - 2)
    f = np.clip(rel - i0, 0.0, 1.0)
    out = np.zeros((comps.shape[0], len(positions)))
    for dx in (0, 1):
        wx = f[:, 0] if dx else 1.0 - f[:, 0]
        for dy in (0, 1):
            wy = wx * (f[:, 1] if dy else 1.0 - f[:, 1])
            for dz in (0, 1):
                wz = wy * (f[:, 2] if dz else 1.0 - f[:, 2])
                out += comps[:, i0[:, 0] + dx, i0[:, 1] + dy, i0[:, 2] + dz] * wz
    return out


def _solve_base(rho, cell):
    nx, ny, nz = rho.shape
    gx = np.arange(2 * nx, dtype=np.float64)
    gy = np.arange(2 * ny, dtype=np.float64)
    gz = np.arange(2 * nz, dtype=np.float64)
    gx = np.minimum(gx, 2 * nx - gx) * cell[0]
    gy = np.minimum(gy, 2 * ny - gy) * cell[1]
    gz = np.minimum(gz, 2 * nz - gz) * cell[2]
    r = np.sqrt(
        gx[:, None, None] ** 2 + gy[None, :, None] ** 2 + gz[None, None, :] ** 2
    )
    with np.errstate(divide="ignore"):
        green = 1.0 / (4.0 * np.pi * r)
    green[0, 0, 0] = 1.0 / (4.0 * np.pi * (0.5 * float(np.mean(cell))))
    rho_pad = np.zeros((2 * nx, 2 * ny, 2 * nz))
    rho_pad[:nx, :ny, :nz] = rho
    phi_pad = np.fft.irfftn(
        np.fft.rfftn(rho_pad) * np.fft.rfftn(green),
        s=rho_pad.shape,
        axes=(0, 1, 2),
    )
    return phi_pad[:nx, :ny, :nz] * float(np.prod(cell))


def _run_baseline(particles, dl, strength, padding):
    """20 drift+kick steps through the pre-optimization kernels."""
    for _ in range(N_STEPS):
        pos = particles[:, :3]
        center = pos.mean(axis=0)
        half = np.maximum(np.abs(pos - center).max(axis=0), 1e-9) * padding
        lo, hi = center - half, center + half
        cell = (hi - lo) / (np.array(GRID) - 1)
        rho = _deposit_base(pos, GRID, lo, hi)
        rho /= len(particles) * float(np.prod(cell))
        phi = _solve_base(rho, cell)
        e_grid = electric_field(phi, cell)
        e = _gather_base(e_grid, pos, lo, hi)
        particles[:, PX] += strength * e[0] * dl
        particles[:, PY] += strength * e[1] * dl
        particles[:, PZ] += strength * e[2] * dl
        particles[:, 0] += particles[:, PX] * dl
        particles[:, 1] += particles[:, PY] * dl
        particles[:, 2] += particles[:, PZ] * dl


def _run_current(particles, dl, solver):
    for _ in range(N_STEPS):
        solver.kick(particles, dl)
        particles[:, 0] += particles[:, PX] * dl
        particles[:, 1] += particles[:, PY] * dl
        particles[:, 2] += particles[:, PZ] * dl


def _beam_scene(rng):
    """A beam-core density volume plus a halo point cloud."""
    ax = np.linspace(-1.0, 1.0, 64)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    density = np.exp(-(x**2 + y**2) / 0.08 - z**2 / 0.5)
    vol = np.empty((64, 64, 64, 4))
    vol[..., 0] = 0.2 + 0.8 * density
    vol[..., 1] = 0.4 * density
    vol[..., 2] = 1.0 - density
    vol[..., 3] = 0.6 * density
    pts = rng.normal(0.0, 0.45, (N_POINTS, 3))
    rgba = np.full((N_POINTS, 4), [1.0, 0.85, 0.3, 0.12])
    camera = Camera(eye=(2.4, 1.8, 2.9), target=(0, 0, 0), width=256, height=256)
    frags = point_fragments(camera, pts, rgba, point_size=1)
    lo = np.array([-1.0, -1.0, -1.0])
    hi = np.array([1.0, 1.0, 1.0])
    return camera, vol, lo, hi, frags


def test_frame_cache_report(benchmark, structure3, mode3, e_sampler):
    results = {}

    def measure():
        rng = np.random.default_rng(0)

        # -- frame: cold / warm / uncached ------------------------------
        camera, vol, lo, hi, frags = _beam_scene(rng)

        def frame(cache):
            return render_mixed(
                camera, vol, lo, hi, point_fragments=frags,
                n_slices=64, cache=cache,
            )

        t0 = time.perf_counter()
        fb_uncached = frame(False)
        t_uncached = time.perf_counter() - t0

        cache = FrameGeometryCache()
        t0 = time.perf_counter()
        frame(cache)
        t_cold = time.perf_counter() - t0

        warm_times = []
        fb_warm = None
        for _ in range(3):
            t0 = time.perf_counter()
            fb_warm = frame(cache)
            warm_times.append(time.perf_counter() - t0)
        t_warm = float(np.mean(warm_times))
        identical = bool(
            np.array_equal(fb_uncached.rgba, fb_warm.rgba)
            and np.array_equal(fb_uncached.depth, fb_warm.depth)
        )
        results["frame"] = {
            "n_points": int(N_POINTS),
            "volume": "64^3",
            "image": "256x256 x 64 slices",
            "t_uncached_s": t_uncached,
            "t_cold_s": t_cold,
            "t_warm_s": t_warm,
            "warm_speedup": t_uncached / t_warm,
            "bit_identical": identical,
        }

        # -- seeding: greedy vs batched ---------------------------------
        from repro.fieldlines.incremental import density_correlation

        t0 = time.perf_counter()
        greedy = seed_density_proportional(
            structure3.mesh, e_sampler, total_lines=N_LINES,
            max_steps=120, rng=np.random.default_rng(0),
        )
        t_greedy = time.perf_counter() - t0
        rho_greedy = density_correlation(structure3.mesh, greedy, N_LINES)
        rows = []
        for batch in BATCH_SIZES:
            t0 = time.perf_counter()
            batched = seed_density_proportional(
                structure3.mesh, e_sampler, total_lines=N_LINES,
                batch_size=batch, max_steps=120, rng=np.random.default_rng(0),
            )
            t = time.perf_counter() - t0
            rows.append({
                "batch_size": batch,
                "t_s": t,
                "speedup": t_greedy / t,
                "density_rho": density_correlation(structure3.mesh, batched, N_LINES),
            })
        results["seeding"] = {
            "n_lines": int(N_LINES),
            "t_greedy_s": t_greedy,
            "greedy_density_rho": rho_greedy,
            "batched": rows,
        }

        # -- space charge: 20-step run, before vs after -----------------
        def fresh_beam():
            p = np.zeros((N_PARTICLES, 6))
            g = np.random.default_rng(1)
            p[:, :3] = g.standard_normal((N_PARTICLES, 3)) * [0.3, 0.3, 0.8]
            p[:, 3:] = g.standard_normal((N_PARTICLES, 3)) * 0.01
            return p

        clear_green_cache()
        dl, strength, padding = 0.05, 1e-2, 1.3

        beam = fresh_beam()
        t0 = time.perf_counter()
        _run_baseline(beam, dl, strength, padding)
        t_base = time.perf_counter() - t0

        beam = fresh_beam()
        solver = SpaceChargeSolver(grid_shape=GRID, strength=strength, padding=padding)
        t0 = time.perf_counter()
        _run_current(beam, dl, solver)
        t_cur = time.perf_counter() - t0

        # single-solve cached vs uncached (Green's-function reuse alone)
        rho = np.random.default_rng(2).random(GRID)
        cell = np.array([0.02, 0.02, 0.05])
        t0 = time.perf_counter()
        solve_poisson_open(rho, cell, cached=False)
        t_solve_cold = time.perf_counter() - t0
        solve_poisson_open(rho, cell)  # populate
        t0 = time.perf_counter()
        solve_poisson_open(rho, cell)
        t_solve_warm = time.perf_counter() - t0
        results["spacecharge"] = {
            "grid": "64^3",
            "n_particles": int(N_PARTICLES),
            "n_steps": N_STEPS,
            "t_baseline_s": t_base,
            "t_current_s": t_cur,
            "run_speedup": t_base / t_cur,
            "t_solve_uncached_s": t_solve_cold,
            "t_solve_cached_s": t_solve_warm,
            "solve_speedup": t_solve_cold / t_solve_warm,
        }

    tracer = traced_run(lambda: benchmark.pedantic(measure, rounds=1, iterations=1))
    record_bench("frame_cache", tracer, extra=results)

    f = results["frame"]
    s = results["seeding"]
    c = results["spacecharge"]
    k8 = next(r for r in s["batched"] if r["batch_size"] == 8)
    record(
        "PERF-FRAME-CACHE",
        [
            f"mixed frame {f['image']}, {f['n_points']} pts, {f['volume']} volume:",
            f"  uncached {f['t_uncached_s']:.3f} s, cold {f['t_cold_s']:.3f} s, "
            f"warm {f['t_warm_s']:.3f} s (x{f['warm_speedup']:.2f}), "
            f"bit-identical: {f['bit_identical']}",
            f"seeding {s['n_lines']} lines: greedy {s['t_greedy_s']:.2f} s "
            f"(rho {s['greedy_density_rho']:+.3f})",
        ]
        + [
            f"  batch={r['batch_size']:3d}: {r['t_s']:.2f} s "
            f"(x{r['speedup']:.2f}), rho {r['density_rho']:+.3f}"
            for r in s["batched"]
        ]
        + [
            f"space charge {c['grid']} x {c['n_steps']} steps, "
            f"{c['n_particles']} particles:",
            f"  baseline {c['t_baseline_s']:.2f} s, current {c['t_current_s']:.2f} s "
            f"(x{c['run_speedup']:.2f})",
            f"  single solve: uncached {c['t_solve_uncached_s']:.3f} s, "
            f"cached {c['t_solve_cached_s']:.3f} s (x{c['solve_speedup']:.2f})",
        ],
    )

    # the PR's acceptance floors
    assert f["bit_identical"]
    assert f["warm_speedup"] >= 3.0
    assert c["run_speedup"] >= 2.0
    assert k8["speedup"] > 1.2
