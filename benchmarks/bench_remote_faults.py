"""remote_faults -- remote fetch throughput under injected faults.

The paper's remote scenario assumes a long unreliable link; this bench
quantifies what the resilience layer costs: hybrid-frame fetch
throughput with 0% / 5% / 20% of received chunks corrupted by a seeded
:class:`repro.core.faults.FaultPlan`, including the retries and
reconnects the damage triggers.  The structured result (trace counters
plus per-rate throughput) lands in ``BENCH_remote_faults.json``.
"""

import numpy as np
import pytest

from common import record, record_bench, traced_run

from repro.core.faults import FaultPlan
from repro.remote.client import VisualizationClient
from repro.remote.server import VisualizationServer

FAULT_RATES = [0.0, 0.05, 0.20]
FETCHES_PER_RATE = 6
RESOLUTION = 16


def test_fetch_throughput_under_faults(benchmark, beam_partitioned):
    thr = float(np.percentile(beam_partitioned.nodes["density"], 60))
    rows = []

    def run():
        rows.clear()
        with VisualizationServer([beam_partitioned]) as server:
            for rate in FAULT_RATES:
                plan = FaultPlan(seed=17, corrupt=rate)
                with VisualizationClient(
                    server.address, fault_plan=plan,
                    timeout=2.0, retries=20, backoff=0.001, backoff_max=0.02,
                ) as client:
                    for _ in range(FETCHES_PER_RATE):
                        client.get_hybrid(0, thr, resolution=RESOLUTION)
                    rows.append(
                        {
                            "rate": rate,
                            "bps": client.throughput_bps(),
                            "bytes": client.stats["bytes_received"],
                            "seconds": client.stats["seconds"],
                            "retries": client.stats["retries"],
                            "reconnects": client.stats["reconnects"],
                            "injected": dict(plan.injected),
                        }
                    )

    tracer = traced_run(lambda: benchmark.pedantic(run, rounds=1, iterations=1))

    clean = rows[0]
    lines = [
        "paper: remote links are long and unreliable; resilience must not",
        "cost the clean path and must keep the damaged path delivering",
        f"workload: {FETCHES_PER_RATE} fetches of a {RESOLUTION}^3 hybrid per rate",
        "corrupt rate -> throughput, retries, reconnects:",
    ]
    for r in rows:
        lines.append(
            f"  {r['rate']:4.0%}: {r['bps'] / 1e6:7.2f} MB/s, "
            f"{r['retries']:3d} retries, {r['reconnects']:3d} reconnects "
            f"(x{clean['bps'] / max(r['bps'], 1e-9):.1f} slower than clean)"
        )
    record("TXT-REMOTE-FAULTS", lines)
    record_bench("remote_faults", tracer, extra={"rates": rows})

    # every rate still delivered every frame
    for r in rows:
        assert r["bytes"] > 0
    # the clean path pays nothing: no retries, no reconnects
    assert clean["retries"] == 0 and clean["reconnects"] == 0
    # a damaged link is slower, not broken
    assert rows[-1]["retries"] >= 1 or rows[-1]["injected"] == {}
