"""The desktop-side visualization client.

Requests hybrid extractions from a :class:`VisualizationServer`,
timing each transfer and accounting bytes -- the measurements behind
the paper's claim that compact hybrid frames make remote exploration
practical ("quickly transferring over a network", section 2.3).

The link is treated as unreliable: every request runs under a socket
timeout inside a bounded retry loop with *decorrelated-jitter*
backoff, and any transport or protocol failure (dropped connection,
corrupted frame, timeout) transparently reconnects before the next
attempt.  The jitter draws each delay from a per-client seeded RNG
stream, ``uniform(base, 3 * previous)`` capped at ``backoff_max`` --
so a fleet of clients knocked back by the same incident retries
spread out in time instead of stampeding in lockstep, while a fixed
``jitter_seed`` keeps every delay sequence reproducible for the
seeded fault tests.  A typed BUSY reply (the multi-tenant service
shedding load) is also retried, sleeping at least the server's
retry-after hint.  Only an application-level server ERROR aborts
immediately -- the request arrived intact, so retrying cannot help.
When every attempt fails a
:class:`~repro.core.errors.RetryExhaustedError` carries the last
underlying error.

Graceful degradation mirrors the paper's view-time quality/latency
trade: with ``degrade_below_bps`` set, a measured throughput below the
threshold halves the *requested* volume resolution (never below
``min_resolution``), so a congested link keeps delivering frames --
coarser ones -- instead of stalling.
"""

from __future__ import annotations

import random
import socket
import time

from repro.core.errors import (
    ProtocolError,
    RemoteError,
    RetryExhaustedError,
    ServiceBusyError,
)
from repro.core.trace import count, span
from repro.hybrid.representation import HybridFrame
from repro.remote import protocol
from repro.remote.protocol import Message, MessageType

__all__ = ["VisualizationClient", "decorrelated_jitter"]


def decorrelated_jitter(
    rng: random.Random, base: float, cap: float, previous: float
) -> float:
    """One step of decorrelated-jitter backoff.

    ``uniform(base, 3 * previous)`` capped at ``cap`` -- each client's
    delays random-walk away from the base instead of doubling in
    lockstep, so synchronized fleets spread their retries out.  Fully
    deterministic for a seeded ``rng``.
    """
    return min(cap, rng.uniform(base, max(previous * 3.0, base)))


class VisualizationClient:
    """Connects to a server and fetches hybrid frames.

    Parameters
    ----------
    address : (host, port) of a :class:`VisualizationServer`
    timeout : per-socket-operation timeout in seconds
    retries : extra attempts per request after the first
    backoff, backoff_max : base and cap of the decorrelated-jitter
        backoff delays between attempts
    jitter_seed : seed of the per-client jitter stream; the default 0
        is deterministic -- give fleet members distinct seeds so their
        retries decorrelate
    degrade_below_bps : measured-throughput floor that triggers a
        resolution downshift (``None`` disables degradation)
    min_resolution : downshift floor for the volume resolution
    fault_plan : optional :class:`repro.core.faults.FaultPlan` wrapping
        the socket with injected stream faults (testing only)
    """

    def __init__(
        self,
        address,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter_seed: int = 0,
        degrade_below_bps: float | None = None,
        min_resolution: int = 8,
        fault_plan=None,
    ):
        self.address = address
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self.degrade_below_bps = degrade_below_bps
        self.min_resolution = int(min_resolution)
        self._fault_plan = fault_plan
        self._rng = random.Random(jitter_seed)
        self._degrade_factor = 1
        self.stats = {
            "bytes_received": 0,
            "frames": 0,
            "seconds": 0.0,
            "errors": 0,
            "retries": 0,
            "reconnects": 0,
            "degradations": 0,
            "busy": 0,
        }
        self.sock = None
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.settimeout(self.timeout)
        if self._fault_plan is not None:
            sock = self._fault_plan.wrap_socket(sock)
        self.sock = sock

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.stats["reconnects"] += 1
        count("remote_reconnects")

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "VisualizationClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(self, message: Message, expected: MessageType) -> Message:
        """One request/reply under the retry policy.

        Bytes and seconds are accounted as soon as a full reply frame
        arrives -- *before* any payload decode -- so a decode failure
        cannot silently skew :meth:`throughput_bps`.

        Transport/protocol failures reconnect before the next attempt;
        a BUSY reply (load shedding) retries on the live connection
        after sleeping at least the server's retry-after hint.
        """
        delay = self.backoff
        last: Exception | None = None
        reconnect = False
        for attempt in range(self.retries + 1):
            if attempt:
                self.stats["retries"] += 1
                count("remote_retries")
                time.sleep(delay)
                delay = decorrelated_jitter(
                    self._rng, self.backoff, self.backoff_max, delay
                )
                if reconnect:
                    try:
                        self._reconnect()
                    except OSError as exc:
                        self.stats["errors"] += 1
                        count("remote_errors")
                        last = exc
                        continue
                    reconnect = False
            try:
                t0 = time.perf_counter()
                protocol.send_message(self.sock, message)
                reply = protocol.recv_message(self.sock)
            except (ProtocolError, OSError) as exc:
                self.stats["errors"] += 1
                count("remote_errors")
                last = exc
                reconnect = True
                continue
            elapsed = time.perf_counter() - t0
            self.stats["bytes_received"] += len(reply.payload)
            self.stats["seconds"] += elapsed
            count("remote_bytes_received", len(reply.payload))
            if reply.type == MessageType.BUSY:
                retry_after, reason = protocol.decode_busy(reply.payload)
                self.stats["busy"] += 1
                count("remote_busy")
                last = ServiceBusyError(
                    reason or "service busy", retry_after=retry_after
                )
                delay = max(delay, retry_after)
                continue
            if reply.type == MessageType.ERROR:
                self.stats["errors"] += 1
                count("remote_errors")
                raise RemoteError(f"server error: {reply.payload.decode()}")
            if reply.type != expected:
                self.stats["errors"] += 1
                count("remote_errors")
                raise RemoteError(f"expected {expected}, got {reply.type}")
            return reply
        raise RetryExhaustedError(
            f"{expected.name} request failed after {self.retries + 1} "
            f"attempt(s): {last}"
        ) from last

    # ------------------------------------------------------------------
    def list_frames(self):
        """Step indices of the frames the server holds."""
        reply = self._request(Message(MessageType.LIST_FRAMES), MessageType.FRAME_LIST)
        return protocol.decode_frame_list(reply.payload)

    def get_stats(self) -> dict:
        """The server's live stats document (counters, cache hit rate,
        p50/p99 service times on the multi-tenant service)."""
        reply = self._request(Message(MessageType.GET_STATS), MessageType.STATS)
        return protocol.decode_stats(reply.payload)

    def effective_resolution(self, resolution: int) -> int:
        """The resolution a request would use after degradation."""
        return max(int(resolution) // self._degrade_factor, self.min_resolution)

    def _maybe_degrade(self) -> None:
        if self.degrade_below_bps is None or self.stats["frames"] == 0:
            return
        if self.throughput_bps() < self.degrade_below_bps:
            self._degrade_factor *= 2
            self.stats["degradations"] += 1
            count("remote_degradations")

    def get_hybrid(
        self, frame_index: int, threshold: float, resolution: int = 64
    ) -> HybridFrame:
        """Request one extraction; timing lands in ``stats``.

        The requested resolution may be downshifted by the degradation
        policy; the frame actually received tells the caller what it
        got (``frame.resolution``).
        """
        self._maybe_degrade()
        resolution = self.effective_resolution(resolution)
        with span("remote_fetch", frame=frame_index, resolution=resolution):
            reply = self._request(
                Message(
                    MessageType.GET_HYBRID,
                    protocol.encode_get_hybrid(frame_index, threshold, resolution),
                ),
                MessageType.HYBRID_FRAME,
            )
        try:
            frame = protocol.decode_hybrid(reply.payload)
        except Exception:
            self.stats["errors"] += 1
            count("remote_errors")
            raise
        self.stats["frames"] += 1
        return frame

    def throughput_bps(self) -> float:
        """Mean received throughput over all requests so far."""
        if self.stats["seconds"] <= 0:
            return 0.0
        return self.stats["bytes_received"] / self.stats["seconds"]
