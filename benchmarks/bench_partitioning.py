"""TXT-PART -- partitioning cost and scaling.

Paper, section 2.3: "The partitioning program takes about 7 minutes
per time step for the 100 million particle simulation.  Since it is
primarily I/O bound, processing time scales linearly as the number of
points increases."  It can also run on multiple nodes.

Measured: partition time across a size sweep (fit the scaling
exponent; the paper says linear), the serial vs multiprocess
comparison, and the extrapolation of our per-particle rate to 100 M
particles next to the paper's 7 minutes.
"""

import time

import numpy as np
import pytest

from common import record, record_bench, scaled, traced_run

from repro.core.dataset import as_dataset
from repro.octree.partition import partition


def _bunch(n, seed=0):
    rng = np.random.default_rng(seed)
    core = rng.normal(0.0, 0.3, (int(n * 0.95), 6))
    halo = rng.normal(0.0, 2.0, (n - len(core), 6))
    return as_dataset(np.vstack([core, halo]))


@pytest.mark.parametrize("n", [scaled(20_000), scaled(40_000), scaled(80_000)])
def test_partition_scaling(benchmark, n):
    particles = _bunch(n)
    benchmark(lambda: partition(particles, "xyz", max_level=6, capacity=48))
    benchmark.extra_info["n_particles"] = n


def test_partition_parallel_workers(benchmark):
    particles = _bunch(scaled(80_000))
    benchmark.pedantic(
        lambda: partition(
            particles, "xyz", max_level=6, capacity=48, workers=4
        ),
        rounds=2,
        iterations=1,
    )


def test_partition_report(benchmark):
    def measure():
        sizes = [scaled(20_000), scaled(40_000), scaled(80_000), scaled(160_000)]
        times = []
        for n in sizes:
            particles = _bunch(n)
            t0 = time.perf_counter()
            partition(particles, "xyz", max_level=6, capacity=48)
            times.append(time.perf_counter() - t0)
        slope = np.polyfit(np.log(sizes), np.log(times), 1)[0]
        per_particle = times[-1] / sizes[-1]

        particles = _bunch(sizes[-1])
        t0 = time.perf_counter()
        partition(particles, "xyz", max_level=6, capacity=48)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        partition(particles, "xyz", max_level=6, capacity=48, workers=4)
        t_par = time.perf_counter() - t0
        return sizes, times, slope, per_particle, t_serial, t_par

    sizes, times, slope, per_particle, t_serial, t_par = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    extrap_100m = per_particle * 100e6
    record(
        "TXT-PART",
        [
            "paper: ~7 min / 100 M particles, linear scaling, multi-node option",
            "measured sweep: "
            + ", ".join(f"{n}: {t * 1e3:.0f} ms" for n, t in zip(sizes, times)),
            f"  log-log slope {slope:.2f} (paper: 1.0 = linear)",
            f"  extrapolated 100 M particles: {extrap_100m / 60:.1f} min "
            "(paper: ~7 min incl. disk I/O on a 2002 IBM SP)",
            f"  serial {t_serial:.2f} s vs 4 workers {t_par:.2f} s at n={sizes[-1]}",
        ],
    )
    assert 0.7 < slope < 1.4, "partitioning must scale ~linearly"


def test_partition_traced_bench():
    """Stage-level partitioning trace persisted as BENCH_partitioning.json."""
    n = scaled(120_000)
    particles = _bunch(n)
    tracer = traced_run(
        lambda: partition(particles, "xyz", max_level=6, capacity=48)
    )
    snap = tracer.snapshot()
    record_bench(
        "partitioning",
        tracer,
        extra={
            "n_particles": n,
            "particles_per_second": n / max(snap["wall_seconds"], 1e-12),
        },
    )
    assert "octree_build" in snap["spans"]
    assert snap["counters"]["particles_routed"] == n
