"""Self-orienting surfaces: strip geometry and rendering."""

import numpy as np
import pytest

from repro.fieldlines.integrate import FieldLine
from repro.fieldlines.sos import build_strip, build_strips, render_strips
from repro.render.camera import Camera


def _straight_line(n=10, axis=0):
    pts = np.zeros((n, 3))
    pts[:, axis] = np.linspace(-1.0, 1.0, n)
    tangents = np.zeros((n, 3))
    tangents[:, axis] = 1.0
    return FieldLine(points=pts, tangents=tangents, magnitudes=np.ones(n))


@pytest.fixture
def cam():
    return Camera(eye=[0, 0, 5.0], target=[0, 0, 0], width=96, height=96)


class TestStripGeometry:
    def test_triangle_count(self, cam):
        line = _straight_line(10)
        strip = build_strip(line, cam, width=0.05)
        assert strip.n_triangles == 2 * (10 - 1)
        assert strip.n_vertices == 2 * 10

    def test_faces_viewer(self, cam):
        """Strip plane must contain the view direction: the normal of
        each strip quad is (nearly) perpendicular to the tangent and
        the offset is perpendicular to the view vector."""
        line = _straight_line(10)
        strip = build_strip(line, cam, width=0.05)
        left = strip.vertices[0::2]
        right = strip.vertices[1::2]
        across = right - left
        view = cam.eye[None, :] - line.points
        dots = np.abs(np.sum(across * view, axis=1)) / (
            np.linalg.norm(across, axis=1) * np.linalg.norm(view, axis=1)
        )
        assert dots.max() < 1e-9

    def test_width_respected(self, cam):
        line = _straight_line(10)
        strip = build_strip(line, cam, width=0.08)
        across = np.linalg.norm(strip.vertices[1::2] - strip.vertices[0::2], axis=1)
        assert np.allclose(across, 0.08)

    def test_width_by_magnitude(self, cam):
        line = _straight_line(10)
        line.magnitudes = np.linspace(0.1, 1.0, 10)
        strip = build_strips([line], cam, width=0.1, width_by_magnitude=True)
        across = np.linalg.norm(strip.vertices[1::2] - strip.vertices[0::2], axis=1)
        assert across[-1] > across[0]
        assert across.max() <= 0.1 + 1e-12

    def test_v_coordinate_alternates(self, cam):
        strip = build_strip(_straight_line(5), cam, width=0.05)
        assert np.allclose(strip.v_coord[0::2], 0.0)
        assert np.allclose(strip.v_coord[1::2], 1.0)

    def test_u_runs_along_arc_length(self, cam):
        strip = build_strip(_straight_line(5), cam, width=0.05)
        u = strip.u_coord[0::2]
        assert np.all(np.diff(u) > 0)

    def test_degenerate_tangent_parallel_view(self):
        """A line running straight toward the camera must not produce
        NaNs (the forward-fill fallback)."""
        cam = Camera(eye=[0, 0, 5.0], target=[0, 0, 0], width=32, height=32)
        line = _straight_line(8, axis=2)  # along the view axis
        strip = build_strip(line, cam, width=0.05)
        assert np.isfinite(strip.vertices).all()

    def test_multi_line_concatenation(self, cam):
        lines = [_straight_line(5), _straight_line(7, axis=1)]
        strips = build_strips(lines, cam, width=0.05)
        assert strips.n_vertices == 2 * (5 + 7)
        assert strips.n_triangles == 2 * (4 + 6)
        assert set(np.unique(strips.line_id)) == {0, 1}

    def test_short_line_skipped(self, cam):
        stub = FieldLine(
            points=np.zeros((1, 3)), tangents=np.zeros((1, 3)), magnitudes=np.ones(1)
        )
        strips = build_strips([stub], cam, width=0.05)
        assert strips.n_triangles == 0

    def test_empty_input(self, cam):
        strips = build_strips([], cam)
        assert strips.n_triangles == 0


class TestStripRendering:
    def test_renders_pixels(self, cam):
        strips = build_strips([_straight_line(20)], cam, width=0.1)
        fb = render_strips(cam, strips)
        assert (fb.to_rgb8().sum(axis=2) > 0).sum() > 50

    def test_bump_shading_center_bright(self, cam):
        """Cross-section must be brighter at the center line than at
        the rim -- the tube illusion."""
        strips = build_strips([_straight_line(20)], cam, width=0.3)
        fb = render_strips(cam, strips, halo_core=None)
        img = fb.to_rgb8().astype(float).sum(axis=2)
        col = img[:, 48]  # vertical slice through the horizontal strip
        lit = np.flatnonzero(col > 0)
        center_lum = col[lit].max()
        edge_lum = col[lit[0]]
        assert center_lum > 1.5 * edge_lum

    def test_halo_darkens_rim(self, cam):
        strips = build_strips([_straight_line(20)], cam, width=0.3)
        with_h = render_strips(cam, strips, halo_core=0.5).to_rgb8().sum()
        without = render_strips(cam, strips, halo_core=None).to_rgb8().sum()
        assert with_h < without

    def test_flat_shading_option(self, cam):
        strips = build_strips([_straight_line(10)], cam, width=0.2)
        fb = render_strips(cam, strips, shading="flat", halo_core=None)
        assert (fb.to_rgb8().sum(axis=2) > 0).any()
        with pytest.raises(ValueError):
            render_strips(cam, strips, shading="wireframe")

    def test_transparent_path(self, cam):
        strips = build_strips([_straight_line(10)], cam, width=0.2)
        fb = render_strips(cam, strips, base_alpha=0.3)
        alphas = fb.rgba[..., 3]
        assert 0 < alphas.max() < 0.5

    def test_alpha_by_magnitude(self, cam):
        line = _straight_line(20)
        line.magnitudes = np.linspace(0.0, 1.0, 20)
        strips = build_strips([line], cam, width=0.2)
        fb = render_strips(cam, strips, alpha_by_magnitude=True)
        a = fb.rgba[..., 3]
        # the strong (right) end must be more opaque than the weak end
        assert a[:, 60:].max() > a[:, :36].max()

    def test_empty_strips_noop(self, cam):
        strips = build_strips([], cam)
        fb = render_strips(cam, strips)
        assert fb.to_rgb8().sum() == 0
