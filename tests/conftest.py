"""Shared fixtures.

Expensive artifacts (simulated beams, partitioned frames, meshed
structures, seeded line sets) are session-scoped: they are built once
and shared read-only by every test that needs them.  Tests that mutate
state build their own small instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beams.simulation import BeamConfig, BeamSimulation
from repro.core.dataset import as_dataset
from repro.fields.geometry import make_multicell_structure
from repro.fields.modes import multicell_standing_wave
from repro.fields.sampling import AnalyticSampler
from repro.fieldlines.seeding import seed_density_proportional
from repro.octree.extraction import extract
from repro.octree.partition import partition
from repro.render.camera import Camera


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def small_beam():
    """A 20k-particle beam run to the end of a 6-cell channel."""
    sim = BeamSimulation(BeamConfig(n_particles=20_000, n_cells=6, seed=7).resolved())
    sim.run()
    return sim.particles.copy()


@pytest.fixture(scope="session")
def partitioned_frame(small_beam):
    return partition(as_dataset(small_beam), "xyz", max_level=6, capacity=32, step=30)


@pytest.fixture(scope="session")
def hybrid_frame(partitioned_frame):
    threshold = float(np.percentile(partitioned_frame.nodes["density"], 60))
    return extract(partitioned_frame, threshold, volume_resolution=32)


@pytest.fixture(scope="session")
def structure3():
    """A small 3-cell accelerator structure with ports."""
    return make_multicell_structure(3, n_xy=6, n_z_per_unit=6)


@pytest.fixture(scope="session")
def mode3(structure3):
    mode = multicell_standing_wave(structure3)
    structure3.mesh.set_field("E", mode.e_field(structure3.mesh.vertices, 0.0))
    structure3.mesh.set_field(
        "B", mode.b_field(structure3.mesh.vertices, np.pi / (2 * mode.omega))
    )
    return mode


@pytest.fixture(scope="session")
def e_sampler(structure3, mode3):
    return AnalyticSampler(mode3, "E", t=0.0, structure=structure3)


@pytest.fixture(scope="session")
def ordered_lines(structure3, mode3, e_sampler):
    return seed_density_proportional(
        structure3.mesh, e_sampler, total_lines=50, field_name="E", max_steps=120,
        rng=np.random.default_rng(3),
    )


@pytest.fixture(scope="session")
def small_camera():
    return Camera.fit_bounds([-1, -1, -1], [1, 1, 1], width=64, height=64)
