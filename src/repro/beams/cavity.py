"""Charged-particle tracking through cavity fields.

The paper's Figure 9 caption: "Charged particles, under the influence
of the propagating field, would be accelerated from left to right."
This module closes that loop -- it pushes particles through the EM
substrate's fields with the standard Boris scheme, connecting the
beam half of the library to the field half.

Normalized units: c = 1, charge/mass absorbed into the field
amplitude; (px, py, pz) are velocities (non-relativistic push).
"""

from __future__ import annotations

import numpy as np

from repro.beams.distributions import PX, PY, PZ, X, Y, Z

__all__ = ["boris_push", "track_through_cavity", "CavityTracker"]


def boris_push(
    positions: np.ndarray,
    velocities: np.ndarray,
    e_field: np.ndarray,
    b_field: np.ndarray,
    dt: float,
):
    """One Boris step; returns (new_positions, new_velocities).

    The Boris rotation applies the magnetic force exactly (energy-
    conserving for pure B), with half electric kicks either side.
    """
    v_minus = velocities + 0.5 * dt * e_field
    t = 0.5 * dt * b_field
    t2 = np.sum(t * t, axis=1, keepdims=True)
    s = 2.0 * t / (1.0 + t2)
    v_prime = v_minus + np.cross(v_minus, t)
    v_plus = v_minus + np.cross(v_prime, s)
    v_new = v_plus + 0.5 * dt * e_field
    x_new = positions + dt * v_new
    return x_new, v_new


class CavityTracker:
    """Tracks a particle bunch through time-varying cavity fields.

    Parameters
    ----------
    mode : an object with ``e_field(points, t)`` and
        ``b_field(points, t)`` (an analytic mode) -- or pass
        ``e_fn`` / ``b_fn`` callables directly
    structure : optional geometry; particles leaving it are frozen
        (lost to the wall)
    charge_sign : +1 or -1
    """

    def __init__(self, mode=None, e_fn=None, b_fn=None, structure=None,
                 charge_sign: float = 1.0):
        if mode is not None:
            e_fn = lambda pts, t: mode.e_field(pts, t)      # noqa: E731
            b_fn = lambda pts, t: mode.b_field(pts, t)      # noqa: E731
        if e_fn is None or b_fn is None:
            raise ValueError("provide a mode or both e_fn and b_fn")
        self.e_fn = e_fn
        self.b_fn = b_fn
        self.structure = structure
        self.charge_sign = float(charge_sign)
        self.time = 0.0

    def step(self, particles: np.ndarray, dt: float) -> None:
        """Advance the (N, 6) bunch one Boris step in place."""
        pos = particles[:, [X, Y, Z]]
        vel = particles[:, [PX, PY, PZ]]
        alive = (
            self.structure.inside(pos)
            if self.structure is not None
            else np.ones(len(particles), dtype=bool)
        )
        if alive.any():
            t_mid = self.time + 0.5 * dt
            e = self.charge_sign * self.e_fn(pos[alive], t_mid)
            b = self.charge_sign * self.b_fn(pos[alive], t_mid)
            new_pos, new_vel = boris_push(pos[alive], vel[alive], e, b, dt)
            pos[alive] = new_pos
            vel[alive] = new_vel
            particles[:, [X, Y, Z]] = pos
            particles[:, [PX, PY, PZ]] = vel
        self.time += dt

    def run(self, particles: np.ndarray, dt: float, n_steps: int,
            trajectory_every: int = 0):
        """Run ``n_steps``; optionally record trajectories.

        Returns the list of (time, positions-copy) snapshots when
        ``trajectory_every`` > 0, else None.
        """
        snapshots = [] if trajectory_every else None
        for i in range(int(n_steps)):
            self.step(particles, dt)
            if trajectory_every and (i + 1) % trajectory_every == 0:
                snapshots.append((self.time, particles[:, :3].copy()))
        return snapshots


def track_through_cavity(
    particles: np.ndarray,
    mode,
    dt: float,
    n_steps: int,
    structure=None,
    charge_sign: float = 1.0,
    trajectory_every: int = 0,
):
    """Convenience wrapper: Boris-track a bunch through a mode's
    fields; returns (particles, snapshots)."""
    tracker = CavityTracker(
        mode=mode, structure=structure, charge_sign=charge_sign
    )
    snaps = tracker.run(
        particles, dt, n_steps, trajectory_every=trajectory_every
    )
    return particles, snaps
