"""The consolidated public API facade.

One import surface for everything the project supports long-term::

    from repro.api import beam_pipeline, partition, extract, Tracer

Everything in ``__all__`` here is covered by the compatibility
expectations in ``tests/test_public_api.py``; names *not* re-exported
here are internal and may move between releases (the one-facade rule,
see DESIGN.md).  The facade only re-exports -- no logic lives here --
so importing it costs the same as importing :mod:`repro`.
"""

from __future__ import annotations

from repro.core.atomic import atomic_write_bytes
from repro.core.checkpoint import Checkpoint
from repro.core.config import BeamPipelineConfig, FieldLinePipelineConfig
from repro.core.dataset import (
    ArrayDataset,
    ParticleDataset,
    as_dataset,
    open_dataset,
)
from repro.core.errors import (
    ChecksumError,
    FormatError,
    ProtocolError,
    RemoteError,
    ReproError,
    RetryExhaustedError,
    ServiceBusyError,
    TruncatedMessageError,
)
from repro.core.executor import run_shards
from repro.core.faults import FaultPlan
from repro.core.store import ShardedStore, StoreWriter, create_store
from repro.core.pipeline import (
    BeamPipelineResult,
    FieldLinePipelineResult,
    beam_pipeline,
    fieldline_pipeline,
)
from repro.core.trace import (
    Tracer,
    capture,
    get_tracer,
    span,
)
from repro.beams.io import frame_to_store
from repro.beams.scenario import (
    ElementSpec,
    EnvelopeController,
    FeedbackController,
    LatticeSpec,
    OrbitController,
    Scenario,
    ScenarioSpec,
    SweepResult,
    controllers_from_spec,
    expand_axes,
    load_scenario,
    load_sweep,
    run_sweep,
)
from repro.beams.simulation import BeamConfig, BeamSimulation
from repro.fieldlines.seeding import OrderedFieldLines, seed_density_proportional
from repro.fieldlines.sos import build_strips, render_strips
from repro.hybrid.renderer import HybridRenderer
from repro.hybrid.representation import HybridFrame
from repro.octree.amr import AmrVolume, amr_from_nodes, build_amr, plan_amr_levels
from repro.octree.extraction import extract
from repro.octree.forest import ForestStore, partition_forest, render_forest
from repro.octree.lod import LodHierarchy, build_lod
from repro.octree.partition import PartitionedFrame, partition
from repro.octree.stream_partition import PartitionedStore, partition_store
from repro.remote.client import VisualizationClient
from repro.remote.loadgen import ChaosSchedule, FleetReport, run_fleet
from repro.remote.server import VisualizationServer
from repro.remote.service import VisualizationService
from repro.render.amr import AmrRgbaVolume, amr_geometry_key, build_amr_geometry
from repro.render.camera import Camera
from repro.render.compositor import SortLastCompositor
from repro.render.frame_cache import (
    FrameGeometry,
    FrameGeometryCache,
    frame_geometry_cache,
)
from repro.render.points import gaussian_splat_fragments

__all__ = [
    # end-to-end pipelines + configuration
    "beam_pipeline",
    "fieldline_pipeline",
    "BeamPipelineConfig",
    "FieldLinePipelineConfig",
    "BeamPipelineResult",
    "FieldLinePipelineResult",
    # beam workflow stages
    "BeamConfig",
    "BeamSimulation",
    # digital-twin scenario layer (PR 10)
    "ElementSpec",
    "LatticeSpec",
    "ScenarioSpec",
    "Scenario",
    "load_scenario",
    "FeedbackController",
    "EnvelopeController",
    "OrbitController",
    "controllers_from_spec",
    "run_sweep",
    "expand_axes",
    "load_sweep",
    "SweepResult",
    "partition",
    "PartitionedFrame",
    "extract",
    "HybridFrame",
    "HybridRenderer",
    # out-of-core datasets + the sharded store (PR 5)
    "open_dataset",
    "as_dataset",
    "ParticleDataset",
    "ArrayDataset",
    "ShardedStore",
    "StoreWriter",
    "create_store",
    "frame_to_store",
    "partition_store",
    "PartitionedStore",
    # LOD hierarchy + progressive streaming (PR 8)
    "build_lod",
    "LodHierarchy",
    # adaptive AMR volumes + Gaussian splatting (PR 9)
    "AmrVolume",
    "build_amr",
    "plan_amr_levels",
    "amr_from_nodes",
    "AmrRgbaVolume",
    "amr_geometry_key",
    "build_amr_geometry",
    "gaussian_splat_fragments",
    # forest-of-octrees partition + sort-last compositing (PR 6)
    "partition_forest",
    "render_forest",
    "ForestStore",
    "SortLastCompositor",
    # field-line workflow stages
    "seed_density_proportional",
    "OrderedFieldLines",
    "build_strips",
    "render_strips",
    # shared infrastructure
    "Camera",
    "FrameGeometry",
    "FrameGeometryCache",
    "frame_geometry_cache",
    "VisualizationServer",
    "VisualizationClient",
    # the multi-tenant asyncio service + chaos fleet (PR 7)
    "VisualizationService",
    "ChaosSchedule",
    "FleetReport",
    "run_fleet",
    "Tracer",
    "get_tracer",
    "span",
    "capture",
    # fault tolerance
    "ReproError",
    "FormatError",
    "ProtocolError",
    "ChecksumError",
    "TruncatedMessageError",
    "RemoteError",
    "ServiceBusyError",
    "RetryExhaustedError",
    "atomic_write_bytes",
    "run_shards",
    "Checkpoint",
    "FaultPlan",
]
