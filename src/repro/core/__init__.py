"""Top-level pipelines and shared utilities.

Glues the substrates into the paper's two end-to-end workflows:

- :func:`repro.core.pipeline.beam_pipeline` -- simulate a beam,
  partition each frame, extract hybrids, render;
- :func:`repro.core.pipeline.fieldline_pipeline` -- mesh a structure,
  solve (or evaluate a mode), seed density-proportional lines, build
  self-orienting surfaces, render.

``metrics`` hosts the quantitative measures the benches report;
``config`` the dataclass configuration for both pipelines; ``trace``
the pipeline-wide structured-tracing subsystem.
"""

from repro.core.config import BeamPipelineConfig, FieldLinePipelineConfig
from repro.core.pipeline import beam_pipeline, fieldline_pipeline
from repro.core.metrics import size_report, fps_estimate
from repro.core.trace import Tracer, get_tracer, span

__all__ = [
    "BeamPipelineConfig",
    "FieldLinePipelineConfig",
    "beam_pipeline",
    "fieldline_pipeline",
    "size_report",
    "fps_estimate",
    "Tracer",
    "get_tracer",
    "span",
]
