"""Property-based tests of the compositing algebra."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.render.framebuffer import composite_fragments, composite_over

unit = st.floats(0.0, 1.0, allow_nan=False)


def rgba_strategy(n_min=1, n_max=50):
    return arrays(
        np.float64, st.tuples(st.integers(n_min, n_max), st.just(4)), elements=unit
    )


class TestOverOperator:
    @given(rgba=rgba_strategy())
    @settings(max_examples=50, deadline=None)
    def test_output_in_unit_range(self, rgba):
        dst = np.zeros((len(rgba), 4))
        composite_over(dst, rgba)
        assert dst.min() >= 0.0 and dst.max() <= 1.0

    @given(rgba=rgba_strategy())
    @settings(max_examples=50, deadline=None)
    def test_over_transparent_dst_is_src_color(self, rgba):
        dst = np.zeros((len(rgba), 4))
        composite_over(dst, rgba)
        # where src has alpha > 0, color passes through unchanged
        a = rgba[:, 3] > 1e-12
        assert np.allclose(dst[a, :3], rgba[a, :3], atol=1e-9)
        assert np.allclose(dst[:, 3], rgba[:, 3])

    @given(
        a=arrays(np.float64, (4,), elements=unit),
        b=arrays(np.float64, (4,), elements=unit),
        c=arrays(np.float64, (4,), elements=unit),
    )
    @settings(max_examples=60, deadline=None)
    def test_associativity(self, a, b, c):
        """(c over b) over a == c over (b over a) in premultiplied
        space; our non-premultiplied implementation must agree where
        alphas are nonzero."""
        # left association
        lhs = a[None].copy()
        composite_over(lhs, b[None])
        composite_over(lhs, c[None])
        # fold b over a first is the same order; to test associativity
        # proper we need premultiplied algebra: verify against it
        def premult(x):
            return np.array([*(x[:3] * x[3]), x[3]])

        def over_pm(top, bot):
            return top + bot * (1.0 - top[3])

        ref = over_pm(premult(c), over_pm(premult(b), premult(a)))
        np.testing.assert_allclose(lhs[0, 3], ref[3], atol=1e-12)
        if ref[3] > 1e-9:
            np.testing.assert_allclose(lhs[0, :3] * lhs[0, 3], ref[:3], atol=1e-9)


class TestFragmentCompositing:
    @given(
        pix=arrays(np.int64, st.integers(1, 80), elements=st.integers(0, 9)),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_order_invariance(self, pix, data):
        n = len(pix)
        depths = data.draw(
            arrays(np.float64, (n,), elements=st.floats(0.1, 10.0, allow_nan=False))
        )
        # equal-depth fragments in one pixel have no defined order;
        # make depths unique so the image is well-defined
        depths = depths + np.arange(n) * 1e-6
        rgba = data.draw(arrays(np.float64, (n, 4), elements=unit))
        a, da = composite_fragments(pix, depths, rgba, 10)
        perm = np.random.default_rng(0).permutation(n)
        b, db = composite_fragments(pix[perm], depths[perm], rgba[perm], 10)
        np.testing.assert_allclose(a, b, atol=1e-9)
        np.testing.assert_allclose(da, db)

    @given(
        pix=arrays(np.int64, st.integers(1, 60), elements=st.integers(0, 9)),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_alpha_bounded_and_monotone(self, pix, data):
        """Output alpha never exceeds 1 and adding fragments never
        reduces a pixel's alpha."""
        n = len(pix)
        depths = data.draw(
            arrays(np.float64, (n,), elements=st.floats(0.1, 10.0, allow_nan=False))
        )
        rgba = data.draw(arrays(np.float64, (n, 4), elements=unit))
        full, _ = composite_fragments(pix, depths, rgba, 10)
        half, _ = composite_fragments(pix[: n // 2], depths[: n // 2], rgba[: n // 2], 10)
        assert full[:, 3].max() <= 1.0 + 1e-12
        assert np.all(full[:, 3] >= half[:, 3] - 1e-9)

    @given(
        depths=arrays(
            np.float64, st.integers(1, 30),
            elements=st.floats(0.1, 10.0, allow_nan=False),
        ),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_pixel_matches_sequential(self, depths, data):
        n = len(depths)
        depths = depths + np.arange(n) * 1e-6  # unique depths (no ties)
        rgba = data.draw(arrays(np.float64, (n, 4), elements=unit))
        rgba[:, 3] = np.minimum(rgba[:, 3], 0.999)
        got, _ = composite_fragments(np.zeros(n, dtype=np.int64), depths, rgba, 1)
        ref = np.zeros((1, 4))
        for i in np.argsort(-depths, kind="stable"):
            composite_over(ref, rgba[i : i + 1])
        np.testing.assert_allclose(got[0], ref[0], atol=1e-7)
