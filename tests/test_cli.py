"""End-to-end CLI workflow (the paper's separate 'programs')."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli_run")
    rc = main(
        [
            "simulate",
            "--out", str(d),
            "--particles", "4000",
            "--cells", "2",
            "--frame-every", "10",
        ]
    )
    assert rc == 0
    return d


class TestSimulate:
    def test_frames_written(self, run_dir):
        frames = sorted(run_dir.glob("*.frame"))
        assert len(frames) == 2  # steps 0 and 10


class TestPartitionExtractRender:
    def test_full_chain(self, run_dir, tmp_path, capsys):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        stem = tmp_path / "p"
        assert main(["partition", str(frame), "--out", str(stem),
                     "--max-level", "5"]) == 0
        assert stem.with_suffix(".nodes").exists()
        assert stem.with_suffix(".particles").exists()

        hybrid = tmp_path / "h.hybrid"
        assert main(["extract", str(stem), "--out", str(hybrid),
                     "--percentile", "60", "--resolution", "16",
                     "--attributes", "pmag"]) == 0
        assert hybrid.exists()

        image = tmp_path / "img.ppm"
        assert main(["render", str(hybrid), "--out", str(image),
                     "--size", "64", "--slices", "8"]) == 0
        from repro.render.image import read_ppm

        img = read_ppm(image)
        assert img.shape == (64, 64, 3)
        assert img.sum() > 0

    def test_render_parts(self, run_dir, tmp_path):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        stem = tmp_path / "p2"
        main(["partition", str(frame), "--out", str(stem), "--max-level", "4"])
        hybrid = tmp_path / "h2.hybrid"
        main(["extract", str(stem), "--out", str(hybrid), "--resolution", "8"])
        for part in ("volume", "points"):
            out = tmp_path / f"{part}.ppm"
            assert main(["render", str(hybrid), "--out", str(out),
                         "--size", "32", "--slices", "4",
                         "--part", part]) == 0
            assert out.exists()

    def test_parallel_partition(self, run_dir, tmp_path):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        stem = tmp_path / "pp"
        assert main(["partition", str(frame), "--out", str(stem),
                     "--max-level", "5", "--workers", "2"]) == 0
        assert stem.with_suffix(".nodes").exists()

    def test_absolute_threshold(self, run_dir, tmp_path):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        stem = tmp_path / "pt"
        main(["partition", str(frame), "--out", str(stem), "--max-level", "4"])
        hybrid = tmp_path / "ht.hybrid"
        assert main(["extract", str(stem), "--out", str(hybrid),
                     "--threshold", "1e9", "--resolution", "4"]) == 0
        from repro.hybrid.representation import HybridFrame

        h = HybridFrame.load(hybrid)
        assert h.n_points == 4000  # everything below 1e9


class TestFieldlines:
    def test_trace_and_pack(self, tmp_path):
        out = tmp_path / "lines.bin"
        image = tmp_path / "lines.ppm"
        assert main(["fieldlines", "--cells", "2", "--lines", "10",
                     "--out", str(out), "--image", str(image),
                     "--size", "48"]) == 0
        assert out.exists() and image.exists()


class TestInfo:
    def test_identifies_every_format(self, run_dir, tmp_path, capsys):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        assert main(["info", str(frame)]) == 0
        assert "particle frame" in capsys.readouterr().out

        stem = tmp_path / "pi"
        main(["partition", str(frame), "--out", str(stem), "--max-level", "4"])
        assert main(["info", str(stem.with_suffix(".nodes"))]) == 0
        assert "partitioned frame" in capsys.readouterr().out

        hybrid = tmp_path / "hi.hybrid"
        main(["extract", str(stem), "--out", str(hybrid), "--resolution", "4"])
        assert main(["info", str(hybrid)]) == 0
        assert "hybrid frame" in capsys.readouterr().out

        lines = tmp_path / "li.bin"
        main(["fieldlines", "--cells", "2", "--lines", "4", "--out", str(lines)])
        capsys.readouterr()
        assert main(["info", str(lines)]) == 0
        assert "packed field lines" in capsys.readouterr().out

    def test_unknown_file(self, tmp_path, capsys):
        bad = tmp_path / "junk.bin"
        bad.write_bytes(b"JUNKJUNKJUNK")
        assert main(["info", str(bad)]) == 1
        assert "unrecognized" in capsys.readouterr().err


class TestTrace:
    def test_simulate_writes_trace_json(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.json"
        assert main(["simulate", "--out", str(tmp_path / "run"),
                     "--particles", "2000", "--cells", "1",
                     "--frame-every", "20",
                     "--trace", str(trace_file)]) == 0
        assert "trace written to" in capsys.readouterr().out
        doc = json.loads(trace_file.read_text())
        assert doc["version"] == 1
        assert "simulate" in doc["spans"]
        assert doc["counters"]["particles_stepped"] > 0

    def test_trace_report_prints_table(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        main(["fieldlines", "--cells", "2", "--lines", "4",
              "--out", str(tmp_path / "l.bin"),
              "--image", str(tmp_path / "l.ppm"), "--size", "32",
              "--trace", str(trace_file)])
        capsys.readouterr()
        assert main(["trace-report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "stage" in out
        for stage in ("mesh", "solve", "seed", "strip", "render"):
            assert stage in out, f"missing stage {stage!r} in report"
        assert "lines_seeded" in out

    def test_trace_flag_accepted_by_every_subcommand(self, tmp_path):
        from repro.cli import build_parser

        parser = build_parser()
        argvs = {
            "simulate": ["simulate", "--out", "d"],
            "partition": ["partition", "f", "--out", "p"],
            "extract": ["extract", "p", "--out", "h"],
            "render": ["render", "h", "--out", "i"],
            "fieldlines": ["fieldlines"],
            "eigen": ["eigen"],
            "info": ["info", "f"],
        }
        for sub, argv in argvs.items():
            args = parser.parse_args(argv)
            assert hasattr(args, "trace"), f"{sub} lacks --trace"


class TestEigen:
    def test_eigen_subcommand(self, capsys):
        rc = main(["eigen", "--radius", "1.0", "--length", "1.0",
                   "--resolution", "8", "--duration", "30", "--peaks", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "measured" in out
        assert "TM0n0" in out


class TestExtractFromDisk:
    def test_from_disk_flag(self, run_dir, tmp_path, capsys):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        stem = tmp_path / "pd"
        main(["partition", str(frame), "--out", str(stem), "--max-level", "4"])
        hybrid = tmp_path / "hd.hybrid"
        assert main(["extract", str(stem), "--out", str(hybrid),
                     "--resolution", "8", "--from-disk"]) == 0
        assert "prefix-only I/O" in capsys.readouterr().out
        assert hybrid.exists()

    def test_from_disk_rejects_attributes(self, run_dir, tmp_path):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        stem = tmp_path / "pe"
        main(["partition", str(frame), "--out", str(stem), "--max-level", "4"])
        with pytest.raises(SystemExit):
            main(["extract", str(stem), "--out", str(tmp_path / "x.hybrid"),
                  "--from-disk", "--attributes", "pmag"])


class TestExitCodes:
    """Typed failures map to distinct exit codes with one-line stderr."""

    def test_damaged_hybrid_exits_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.hybrid"
        bad.write_bytes(b"RPRHYBRD" + b"\x00" * 8)  # right magic, torn header
        assert main(["render", str(bad), "--out", str(tmp_path / "o.ppm")]) == 3
        err = capsys.readouterr().err
        assert err.startswith("repro: damaged data file:")
        assert "Traceback" not in err

    def test_damaged_partition_exits_3(self, tmp_path, capsys):
        stem = tmp_path / "junk"
        stem.with_suffix(".nodes").write_bytes(b"\xff" * 64)
        stem.with_suffix(".particles").write_bytes(b"\xff" * 64)
        assert main(["extract", str(stem),
                     "--out", str(tmp_path / "h.hybrid")]) == 3
        assert "repro: damaged data file:" in capsys.readouterr().err

    def test_missing_input_exits_2(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.hybrid")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_exit_codes_are_distinct(self):
        from repro.cli import (
            EXIT_FORMAT_ERROR,
            EXIT_PROTOCOL_ERROR,
            EXIT_REMOTE_ERROR,
            EXIT_USAGE,
        )

        codes = [EXIT_USAGE, EXIT_FORMAT_ERROR, EXIT_PROTOCOL_ERROR,
                 EXIT_REMOTE_ERROR]
        assert len(set(codes)) == len(codes)
        assert all(c != 0 for c in codes)


class TestStoreWorkflow:
    """The out-of-core chain: store create -> partition -> extract."""

    @pytest.fixture(scope="class")
    def store_dir(self, run_dir, tmp_path_factory):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        d = tmp_path_factory.mktemp("store") / "st"
        assert main(["store", "create", str(frame), "--out", str(d),
                     "--shard-rows", "1024"]) == 0
        return d

    def test_store_info_and_verify(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir)]) == 0
        assert "sharded store" in capsys.readouterr().out
        assert main(["store", "verify", str(store_dir)]) == 0
        assert "CRC32 verified" in capsys.readouterr().out

    def test_store_verify_detects_damage(self, run_dir, tmp_path, capsys):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        d = tmp_path / "st"
        assert main(["store", "create", str(frame), "--out", str(d)]) == 0
        shard = sorted(d.glob("shard_*.bin"))[0]
        raw = bytearray(shard.read_bytes())
        raw[7] ^= 0xFF
        shard.write_bytes(bytes(raw))
        assert main(["store", "verify", str(d)]) == 3
        assert "damaged" in capsys.readouterr().err

    def test_streaming_chain_matches_incore(self, run_dir, store_dir,
                                            tmp_path, capsys):
        frame = sorted(run_dir.glob("*.frame"))[-1]
        stem = tmp_path / "p"
        assert main(["partition", str(frame), "--out", str(stem),
                     "--max-level", "4"]) == 0

        out = tmp_path / "pstore"
        assert main(["partition", str(store_dir), "--out", str(out),
                     "--max-level", "4",
                     "--checkpoint", str(tmp_path / "ck")]) == 0
        assert "out-of-core" in capsys.readouterr().out
        assert main(["info", str(out)]) == 0
        assert "partitioned store" in capsys.readouterr().out

        ha = tmp_path / "a.hybrid"
        hb = tmp_path / "b.hybrid"
        assert main(["extract", str(stem), "--out", str(ha),
                     "--percentile", "60", "--resolution", "12"]) == 0
        assert main(["extract", str(out), "--out", str(hb),
                     "--percentile", "60", "--resolution", "12"]) == 0
        assert "shard-streamed" in capsys.readouterr().out

        from repro.hybrid.representation import HybridFrame

        a = HybridFrame.load(ha)
        b = HybridFrame.load(hb)
        assert np.array_equal(a.points, b.points)
        np.testing.assert_array_max_ulp(a.volume, b.volume, maxulp=1)

    def test_info_on_plain_dir(self, tmp_path, capsys):
        assert main(["info", str(tmp_path)]) == 1
        assert "without a store manifest" in capsys.readouterr().err


class TestScenarioWorkflow:
    """The digital-twin chain: spec file -> run/sweep -> info."""

    @pytest.fixture(scope="class")
    def spec_path(self, tmp_path_factory):
        from repro.beams.scenario import LatticeSpec, ScenarioSpec

        spec = ScenarioSpec(
            lattice=LatticeSpec.fodo(n_cells=4),
            name="cli-demo",
            n_particles=600,
            space_charge=False,
            steps=10,
        )
        return spec.save(tmp_path_factory.mktemp("scenario") / "spec.json")

    def test_scenario_info(self, spec_path, capsys):
        assert main(["scenario", "info", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out
        assert "qf=6" in out
        assert "stable cell: True" in out

    def test_scenario_run_with_override_and_store(self, spec_path, tmp_path,
                                                  capsys):
        store = tmp_path / "final"
        assert main(["scenario", "run", str(spec_path),
                     "--set", "lattice.qf=5.5", "--set", "seed=7",
                     "--out", str(store)]) == 0
        out = capsys.readouterr().out
        assert "ran scenario 'cli-demo' for 10 step(s)" in out
        assert "stored final beam: 600 particles" in out
        # the landed store is a first-class citizen of the existing CLI
        assert main(["store", "info", str(store)]) == 0
        assert "sharded store" in capsys.readouterr().out

    def test_scenario_run_reports_controllers(self, tmp_path, capsys):
        from repro.beams.scenario import LatticeSpec, ScenarioSpec

        spec = ScenarioSpec(
            lattice=LatticeSpec.fodo(n_cells=6),
            n_particles=400,
            space_charge=False,
            controllers=(
                {"type": "envelope", "knob": "qf", "target": 1.07,
                 "deadband": 5.0, "settle": 2},
            ),
        )
        path = spec.save(tmp_path / "fb.json")
        assert main(["scenario", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "EnvelopeController[qf]" in out
        # --open-loop detaches the declared controllers
        assert main(["scenario", "run", str(path), "--open-loop"]) == 0
        assert "EnvelopeController" not in capsys.readouterr().out

    def test_scenario_sweep_and_info(self, spec_path, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(["scenario", "sweep", str(spec_path),
                     "--axis", "lattice.qf=5.5,6.0",
                     "--axis", "mismatch=1.0,1.2",
                     "--out", str(out_dir),
                     "--workers", "1",
                     "--checkpoint", str(tmp_path / "ck")]) == 0
        out = capsys.readouterr().out
        assert "swept 4 member(s)" in out
        # resume: nothing re-runs
        assert main(["scenario", "sweep", str(spec_path),
                     "--axis", "lattice.qf=5.5,6.0",
                     "--axis", "mismatch=1.0,1.2",
                     "--out", str(out_dir)]) == 0
        assert "4 resumed from disk" in capsys.readouterr().out
        assert main(["scenario", "info", str(out_dir)]) == 0
        info = capsys.readouterr().out
        assert "sweep: 4 member(s)" in info
        assert "member_0000" in info
        # each member is an ordinary store to the rest of the CLI
        assert main(["info", str(out_dir / "member_0003")]) == 0

    def test_damaged_spec_exits_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["scenario", "run", str(bad)]) == 3
        assert "damaged data file" in capsys.readouterr().err

    def test_missing_spec_exits_2(self, tmp_path, capsys):
        assert main(["scenario", "info", str(tmp_path / "nope.json")]) == 2

    def test_bad_override_value_is_usage_error(self, spec_path):
        with pytest.raises(SystemExit):
            main(["scenario", "run", str(spec_path),
                  "--set", "lattice.qf=strong"])
