"""Property-based tests of the octree partition/extraction invariants.

These are the load-bearing guarantees of the paper's preprocessing:
whatever the particle distribution, partitioning must cover every
particle exactly once, sort groups by density, and extraction must be
a pure prefix that nests across thresholds.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dataset import as_dataset
from repro.octree.extraction import extract
from repro.octree.octree import Octree, morton_keys
from repro.octree.partition import partition

finite = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)


def particles_strategy(min_n=1, max_n=400):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(6)),
        elements=finite,
    )


def coords_strategy(min_n=1, max_n=400):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(3)),
        elements=finite,
    )


class TestOctreeProperties:
    @given(coords=coords_strategy(), max_level=st.integers(1, 6),
           capacity=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_partition_completeness(self, coords, max_level, capacity):
        tree = Octree(coords, max_level=max_level, capacity=capacity)
        assert int(tree.nodes["count"].sum()) == len(coords)
        starts = tree.nodes["start"].astype(int)
        counts = tree.nodes["count"].astype(int)
        assert starts[0] == 0
        assert np.array_equal(starts[1:], np.cumsum(counts)[:-1])
        assert np.array_equal(np.sort(tree.order), np.arange(len(coords)))

    @given(coords=coords_strategy(min_n=2), level=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_morton_keys_in_range(self, coords, level):
        lo = coords.min(axis=0) - 1.0
        hi = coords.max(axis=0) + 1.0
        keys = morton_keys(coords, lo, hi, level)
        assert np.all(keys < np.uint64(8**level))

    @given(coords=coords_strategy(min_n=8), capacity=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_levels_bounded(self, coords, capacity):
        tree = Octree(coords, max_level=4, capacity=capacity)
        assert tree.nodes["level"].max() <= 4
        assert tree.nodes["level"].min() >= 0


class TestPartitionProperties:
    @given(particles=particles_strategy())
    @settings(max_examples=30, deadline=None)
    def test_density_sorted_and_valid(self, particles):
        pf = partition(as_dataset(particles), "xyz", max_level=4, capacity=16)
        pf.validate()

    @given(particles=particles_strategy(min_n=4))
    @settings(max_examples=30, deadline=None)
    def test_particle_multiset_preserved(self, particles):
        pf = partition(as_dataset(particles), "xyz", max_level=4, capacity=16)
        a = np.sort(particles.view([("", float)] * 6), axis=0)
        b = np.sort(pf.particles.view([("", float)] * 6), axis=0)
        assert np.array_equal(a, b)

    @given(
        particles=particles_strategy(min_n=8),
        q1=st.floats(0.0, 1.0),
        q2=st.floats(0.0, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_extraction_prefix_nesting(self, particles, q1, q2):
        """For any thresholds t1 <= t2: points(t1) is a prefix of
        points(t2)."""
        pf = partition(as_dataset(particles), "xyz", max_level=4, capacity=16)
        lo_q, hi_q = sorted((q1, q2))
        t1 = float(np.quantile(pf.nodes["density"], lo_q))
        t2 = float(np.quantile(pf.nodes["density"], hi_q))
        h1 = extract(pf, t1, volume_resolution=4)
        h2 = extract(pf, t2, volume_resolution=4)
        assert h1.n_points <= h2.n_points
        assert np.array_equal(h2.points[: h1.n_points], h1.points)

    @given(particles=particles_strategy(min_n=4), q=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_extraction_conserves_mass(self, particles, q):
        pf = partition(as_dataset(particles), "xyz", max_level=4, capacity=16)
        t = float(np.quantile(pf.nodes["density"], q))
        h = extract(pf, t, volume_resolution=8, volume_from="all")
        res = np.array(h.volume.shape)
        cell_vol = float(np.prod((h.hi - h.lo) / (res - 1)))
        np.testing.assert_allclose(
            float(h.volume.sum()) * cell_vol, len(particles), rtol=1e-4
        )
