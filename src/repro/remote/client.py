"""The desktop-side visualization client.

Requests hybrid extractions from a :class:`VisualizationServer`,
timing each transfer and accounting bytes -- the measurements behind
the paper's claim that compact hybrid frames make remote exploration
practical ("quickly transferring over a network", section 2.3).

The link is treated as unreliable: every request runs under a socket
timeout inside a bounded retry loop with *decorrelated-jitter*
backoff, and any transport or protocol failure (dropped connection,
corrupted frame, timeout) transparently reconnects before the next
attempt.  The jitter draws each delay from a per-client seeded RNG
stream, ``uniform(base, 3 * previous)`` capped at ``backoff_max`` --
so a fleet of clients knocked back by the same incident retries
spread out in time instead of stampeding in lockstep, while a fixed
``jitter_seed`` keeps every delay sequence reproducible for the
seeded fault tests.  A typed BUSY reply (the multi-tenant service
shedding load) is also retried, sleeping at least the server's
retry-after hint.  Only an application-level server ERROR aborts
immediately -- the request arrived intact, so retrying cannot help.
When every attempt fails a
:class:`~repro.core.errors.RetryExhaustedError` carries the last
underlying error.

Graceful degradation mirrors the paper's view-time quality/latency
trade: with ``degrade_below_bps`` set, a measured throughput below the
threshold halves the *requested* volume resolution (never below
``min_resolution``), so a congested link keeps delivering frames --
coarser ones -- instead of stalling.  The estimate is *windowed*
(the last ``throughput_window`` transfers, not the lifetime average),
the downshift factor is capped exactly at the ``min_resolution``
clamp, and a hysteresis-guarded upshift walks the resolution back up
once the link stays healthy -- so a transient stall costs a few coarse
frames, not the rest of the session.

For links where even degradation is not enough -- or where the user
wants a picture *now* and quality later -- :meth:`iter_hybrid` speaks
the progressive LOD protocol: a coarse frame in one round-trip, then
refinements in screen-space-error priority order, every yielded frame
a valid :class:`HybridFrame` and the final one bit-identical to
:meth:`get_hybrid`'s.
"""

from __future__ import annotations

import collections
import random
import socket
import time

import numpy as np

from repro.core.errors import (
    ProtocolError,
    RemoteError,
    RetryExhaustedError,
    ServiceBusyError,
)
from repro.core.trace import count, span
from repro.hybrid.representation import HybridFrame
from repro.remote import protocol
from repro.remote.protocol import Message, MessageType

__all__ = ["VisualizationClient", "decorrelated_jitter"]


def decorrelated_jitter(
    rng: random.Random, base: float, cap: float, previous: float
) -> float:
    """One step of decorrelated-jitter backoff.

    ``uniform(base, 3 * previous)`` capped at ``cap`` -- each client's
    delays random-walk away from the base instead of doubling in
    lockstep, so synchronized fleets spread their retries out.  Fully
    deterministic for a seeded ``rng``.
    """
    return min(cap, rng.uniform(base, max(previous * 3.0, base)))


class VisualizationClient:
    """Connects to a server and fetches hybrid frames.

    Parameters
    ----------
    address : (host, port) of a :class:`VisualizationServer`
    timeout : per-socket-operation timeout in seconds
    retries : extra attempts per request after the first
    backoff, backoff_max : base and cap of the decorrelated-jitter
        backoff delays between attempts
    jitter_seed : seed of the per-client jitter stream; the default 0
        is deterministic -- give fleet members distinct seeds so their
        retries decorrelate
    degrade_below_bps : measured-throughput floor that triggers a
        resolution downshift (``None`` disables degradation)
    min_resolution : downshift floor for the volume resolution
    throughput_window : transfers in the sliding throughput estimate
        the degradation policy reads (the lifetime average never
        recovers after an incident; the window does)
    upshift_after : consecutive healthy frames (windowed throughput at
        least ``2 * degrade_below_bps``) before one upshift step -- the
        hysteresis guard that keeps the resolution from flapping when
        the link hovers near the threshold
    fault_plan : optional :class:`repro.core.faults.FaultPlan` wrapping
        the socket with injected stream faults (testing only)
    """

    def __init__(
        self,
        address,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter_seed: int = 0,
        degrade_below_bps: float | None = None,
        min_resolution: int = 8,
        throughput_window: int = 8,
        upshift_after: int = 3,
        fault_plan=None,
    ):
        self.address = address
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self.degrade_below_bps = degrade_below_bps
        self.min_resolution = int(min_resolution)
        self.throughput_window = max(int(throughput_window), 1)
        self.upshift_after = max(int(upshift_after), 1)
        self._fault_plan = fault_plan
        self._rng = random.Random(jitter_seed)
        self._degrade_factor = 1
        self._good_streak = 0
        self._samples: collections.deque = collections.deque(
            maxlen=self.throughput_window
        )
        self._next_stream_id = 0
        self.stats = {
            "bytes_received": 0,
            "frames": 0,
            "seconds": 0.0,
            "errors": 0,
            "retries": 0,
            "reconnects": 0,
            "degradations": 0,
            "upshifts": 0,
            "busy": 0,
            "refinements": 0,
            "streams": 0,
        }
        self.sock = None
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.settimeout(self.timeout)
        if self._fault_plan is not None:
            sock = self._fault_plan.wrap_socket(sock)
        self.sock = sock

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.stats["reconnects"] += 1
        count("remote_reconnects")

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "VisualizationClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(self, message: Message, expected: MessageType) -> Message:
        """One request/reply under the retry policy.

        Bytes and seconds are accounted as soon as a full reply frame
        arrives -- *before* any payload decode -- so a decode failure
        cannot silently skew :meth:`throughput_bps`.

        Transport/protocol failures reconnect before the next attempt;
        a BUSY reply (load shedding) retries on the live connection
        after sleeping at least the server's retry-after hint.
        """
        delay = self.backoff
        last: Exception | None = None
        reconnect = False
        for attempt in range(self.retries + 1):
            if attempt:
                self.stats["retries"] += 1
                count("remote_retries")
                time.sleep(delay)
                delay = decorrelated_jitter(
                    self._rng, self.backoff, self.backoff_max, delay
                )
                if reconnect:
                    try:
                        self._reconnect()
                    except OSError as exc:
                        self.stats["errors"] += 1
                        count("remote_errors")
                        last = exc
                        continue
                    reconnect = False
            try:
                t0 = time.perf_counter()
                protocol.send_message(self.sock, message)
                reply = protocol.recv_message(self.sock)
            except (ProtocolError, OSError) as exc:
                self.stats["errors"] += 1
                count("remote_errors")
                last = exc
                reconnect = True
                continue
            elapsed = time.perf_counter() - t0
            self.stats["bytes_received"] += len(reply.payload)
            self.stats["seconds"] += elapsed
            self._samples.append((len(reply.payload), elapsed))
            count("remote_bytes_received", len(reply.payload))
            if reply.type == MessageType.BUSY:
                retry_after, reason = protocol.decode_busy(reply.payload)
                self.stats["busy"] += 1
                count("remote_busy")
                last = ServiceBusyError(
                    reason or "service busy", retry_after=retry_after
                )
                delay = max(delay, retry_after)
                continue
            if reply.type == MessageType.ERROR:
                self.stats["errors"] += 1
                count("remote_errors")
                raise RemoteError(f"server error: {reply.payload.decode()}")
            if reply.type != expected:
                self.stats["errors"] += 1
                count("remote_errors")
                raise RemoteError(f"expected {expected}, got {reply.type}")
            return reply
        raise RetryExhaustedError(
            f"{expected.name} request failed after {self.retries + 1} "
            f"attempt(s): {last}"
        ) from last

    # ------------------------------------------------------------------
    def list_frames(self):
        """Step indices of the frames the server holds."""
        reply = self._request(Message(MessageType.LIST_FRAMES), MessageType.FRAME_LIST)
        return protocol.decode_frame_list(reply.payload)

    def get_stats(self) -> dict:
        """The server's live stats document (counters, cache hit rate,
        p50/p99 service times on the multi-tenant service)."""
        reply = self._request(Message(MessageType.GET_STATS), MessageType.STATS)
        return protocol.decode_stats(reply.payload)

    def effective_resolution(self, resolution: int) -> int:
        """The resolution a request would use after degradation."""
        return max(int(resolution) // self._degrade_factor, self.min_resolution)

    def _degrade_cap(self, resolution: int) -> int:
        """Largest useful downshift factor: one more halving would take
        ``resolution`` below ``min_resolution``, which the clamp would
        undo anyway -- growing the factor past this point only delays
        recovery (the old one-way-ratchet bug)."""
        cap = 1
        while int(resolution) // (cap * 2) >= self.min_resolution:
            cap *= 2
        return cap

    def _maybe_degrade(self, resolution: int) -> None:
        """One step of the degradation control loop.

        Reads the *windowed* throughput (the lifetime average can stay
        below the threshold forever after one bad stretch, firing a
        downshift every frame); downshifts are capped at the
        ``min_resolution`` clamp; and a healed link upshifts back --
        but only after ``upshift_after`` consecutive frames measured at
        2x the threshold, so a link hovering at the boundary settles
        instead of flapping (classic hysteresis band).
        """
        if self.degrade_below_bps is None or self.stats["frames"] == 0:
            return
        bps = self.windowed_throughput_bps()
        if bps < self.degrade_below_bps:
            self._good_streak = 0
            cap = self._degrade_cap(resolution)
            if self._degrade_factor < cap:
                self._degrade_factor = min(self._degrade_factor * 2, cap)
                self.stats["degradations"] += 1
                count("remote_degradations")
        elif bps >= 2.0 * self.degrade_below_bps:
            self._good_streak += 1
            if self._good_streak >= self.upshift_after and self._degrade_factor > 1:
                self._degrade_factor //= 2
                self._good_streak = 0
                self.stats["upshifts"] += 1
                count("remote_upshifts")
        else:
            # inside the hysteresis band: hold the current quality
            self._good_streak = 0

    def get_hybrid(
        self, frame_index: int, threshold: float, resolution: int = 64
    ) -> HybridFrame:
        """Request one extraction; timing lands in ``stats``.

        The requested resolution may be downshifted by the degradation
        policy; the frame actually received tells the caller what it
        got (``frame.resolution``).
        """
        self._maybe_degrade(resolution)
        resolution = self.effective_resolution(resolution)
        with span("remote_fetch", frame=frame_index, resolution=resolution):
            reply = self._request(
                Message(
                    MessageType.GET_HYBRID,
                    protocol.encode_get_hybrid(frame_index, threshold, resolution),
                ),
                MessageType.HYBRID_FRAME,
            )
        try:
            frame = protocol.decode_hybrid(reply.payload)
        except Exception:
            self.stats["errors"] += 1
            count("remote_errors")
            raise
        self.stats["frames"] += 1
        return frame

    # ------------------------------------------------------------------
    # progressive LOD streaming
    # ------------------------------------------------------------------
    def iter_hybrid(
        self,
        frame_index: int,
        threshold: float,
        resolution: int = 64,
        eye=None,
        max_refinements: int | None = None,
    ):
        """Progressively stream one extraction as refining frames.

        Speaks the pull-based LOD protocol: the first round-trip
        returns a coarse but *valid* :class:`HybridFrame` (the
        coarsest stored subsample of the halo plus a mip-resampled
        volume), and each further round-trip merges one refinement
        unit, served by the server in screen-space-error priority
        order against ``eye`` (``None``: the frame's box center).

        Every yielded frame is valid and monotonically more complete
        -- its points are the file-order subset received so far -- and
        when the stream runs to completion the **last yielded frame is
        bit-identical to** :meth:`get_hybrid`'s for the same request.
        ``max_refinements`` stops early after that many units (the
        caller keeps the best frame so far; the server discards the
        stream when the session ends or on its next DONE pull).

        The degradation policy does not apply here: ordering quality
        over time is this path's whole job, so the requested
        resolution is never downshifted.  Point attributes are not
        carried on progressive streams.

        Raises :class:`~repro.core.errors.RemoteError` if the server
        ends the stream before full coverage (premature DONE).
        """
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        self.stats["streams"] += 1
        count("remote_streams")

        def pull():
            reply = self._request(
                Message(
                    MessageType.REFINE,
                    protocol.encode_refine(
                        stream_id, frame_index, threshold, resolution, eye
                    ),
                ),
                MessageType.LOD_FRAME,
            )
            try:
                return protocol.decode_lod_frame(reply.payload)
            except ProtocolError:
                self.stats["errors"] += 1
                count("remote_errors")
                raise

        with span("remote_stream_open", frame=frame_index, resolution=resolution):
            _, kind, _, _, payload = pull()
            if kind != protocol.LodKind.BASE:
                raise RemoteError(f"expected BASE stream unit, got {kind.name}")
            base, rows, n_total = protocol.decode_lod_base(payload)
        volume = base.volume
        rows_acc = rows
        pts_acc = base.points
        dens_acc = base.point_densities
        have_exact_volume = False

        def assembled() -> HybridFrame:
            order = np.argsort(rows_acc, kind="stable")
            return HybridFrame(
                volume=volume,
                points=pts_acc[order],
                point_densities=dens_acc[order],
                lo=base.lo,
                hi=base.hi,
                threshold=base.threshold,
                step=base.step,
                plot_type=base.plot_type,
            )

        self.stats["frames"] += 1
        yield assembled()
        served = 0
        while max_refinements is None or served < max_refinements:
            _, kind, _, _, payload = pull()
            if kind == protocol.LodKind.DONE:
                if len(rows_acc) != n_total or not have_exact_volume:
                    raise RemoteError(
                        f"stream ended after {len(rows_acc)}/{n_total} points "
                        f"(exact volume: {have_exact_volume})"
                    )
                return
            if kind == protocol.LodKind.POINTS:
                r, p, d = protocol.decode_lod_points(payload)
                rows_acc = np.concatenate([rows_acc, r])
                pts_acc = np.concatenate([pts_acc, p])
                dens_acc = np.concatenate([dens_acc, d])
            elif kind == protocol.LodKind.VOLUME:
                volume = protocol.decode_lod_volume(payload)
                have_exact_volume = True
            else:
                raise RemoteError(f"unexpected stream unit {kind.name}")
            self.stats["refinements"] += 1
            count("remote_refinements")
            served += 1
            yield assembled()

    def throughput_bps(self) -> float:
        """Mean received throughput over all requests so far."""
        if self.stats["seconds"] <= 0:
            return 0.0
        return self.stats["bytes_received"] / self.stats["seconds"]

    def windowed_throughput_bps(self) -> float:
        """Throughput over the last ``throughput_window`` transfers.

        This is what the degradation policy reads: unlike the lifetime
        average, it forgets an incident once the window rolls past it,
        so a healed link measures healthy again.
        """
        if not self._samples:
            return 0.0
        nbytes = sum(b for b, _ in self._samples)
        seconds = sum(s for _, s in self._samples)
        if seconds <= 0:
            return 0.0
        return nbytes / seconds
