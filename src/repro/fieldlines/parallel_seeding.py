"""Batched field-line seeding (paper section 3.4's parallelization).

"We are presently parallelizing the field line calculations on PC
clusters to speed up this preprocessing task."

The greedy seeder of :mod:`repro.fieldlines.seeding` integrates one
line at a time because each line's element visits update the needs
that pick the next seed.  This module relaxes that by one round: each
round selects the ``batch_size`` *distinct* most-needy elements, seeds
one line in each, and integrates all of them simultaneously through
the vectorized batch tracer (the software analogue of farming lines
out to cluster nodes).  Needs update between rounds.

The approximation is mild: within a round, lines come from different
elements, so they would rarely have affected each other's selection.
The ordering still loads strong-field regions first and keeps the
prefix-superset property; the ablation bench quantifies the
density-accuracy gap against the strict greedy order.

Ordering guarantee and tolerance
--------------------------------
Every prefix of the batched ordering is a superset of every shorter
prefix (exactly, by construction -- lines are appended in selection
order and never reordered).  Relative to the strict greedy ordering,
the deviation is bounded by the round size: the elements seeded in a
round are the K most-needy under needs that are up to K-1 line-visits
stale, so a line can appear at most K-1 positions away from where
greedy would have placed a line for the same element, and any prefix
of n lines differs from some greedy-achievable prefix only within its
last partial round.  ``batch_size=1`` reduces exactly to greedy.  The
per-element achieved/desired densities agree with greedy within the
tolerance asserted in
``tests/fieldlines/test_parallel_seeding.py`` (mean absolute
deviation well under one line per element on the reference dipole
field).

Both halves of every line in a round integrate as one lockstep fleet
(one :func:`integrate_batch` call with per-seed directions), so K
candidate lines share each RK4 field evaluation -- the source of the
batched mode's throughput win.

With ``workers > 1`` each round's half-traces are farmed out to worker
*processes* through :func:`repro.core.executor.run_shards` -- the
actual "PC cluster" of the quote, with its failure semantics: a dead
worker's shard is retried in a fresh pool, and persistent pool
breakage falls back to in-process integration (identical results,
tracked by the executor's tracer counters).  The field sampler must be
picklable for this path.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.executor import run_shards
from repro.core.trace import count
from repro.fieldlines.integrate import FieldLine, integrate_batch
from repro.fieldlines.seeding import (
    OrderedFieldLines,
    _ElementVisitCounter,
    _random_points_in_elements,
    desired_line_counts,
)
from repro.fields.mesh import HexMesh

__all__ = ["seed_density_proportional_batched"]


def _integrate_shard(args):
    """Integrate one chunk of a round's seeds (runs in a worker)."""
    field_fn, seeds, step, max_steps, floor, direction = args
    return integrate_batch(
        field_fn, seeds, step=step, max_steps=max_steps,
        min_magnitude=floor, direction=direction,
    )


def _integrate_round(field_fn, seeds, step, max_steps, floor, workers, _shard_fn=None):
    """Forward+backward half-traces for a round's seeds.

    ``workers > 1`` splits each direction into per-worker shards run
    through :func:`run_shards` (crash-safe); otherwise both directions
    integrate in-process.  ``_shard_fn`` is the fault-injection seam.
    """
    if workers <= 1:
        # fuse both directions into one lockstep fleet: 2K lines share
        # every RK4 field evaluation instead of 2 sequential passes
        k = len(seeds)
        both = integrate_batch(
            field_fn,
            np.vstack([seeds, seeds]),
            step=step,
            max_steps=max_steps,
            min_magnitude=floor,
            direction=np.concatenate([np.ones(k), -np.ones(k)]),
        )
        return both[:k], both[k:]
    chunks = np.array_split(np.arange(len(seeds)), min(workers, len(seeds)))
    chunks = [c for c in chunks if len(c)]
    tasks = [
        (field_fn, seeds[c], step, max_steps, floor, direction)
        for direction in (+1.0, -1.0)
        for c in chunks
    ]
    shard_fn = _shard_fn if _shard_fn is not None else _integrate_shard
    results = run_shards(shard_fn, tasks, workers=workers, label="seed_rounds")
    half = len(chunks)
    fwd = [line for shard in results[:half] for line in shard]
    bwd = [line for shard in results[half:] for line in shard]
    return fwd, bwd


def _stitch(forward: FieldLine, backward: FieldLine, field_fn, floor: float) -> FieldLine:
    """Join a backward and forward half-trace into one line."""
    pts = np.vstack([backward.points[::-1], forward.points[1:]])
    if len(pts) < 2:
        pts = np.vstack([pts, pts])
    v = field_fn(pts)
    mags = np.linalg.norm(v, axis=1)
    tangents = np.gradient(pts, axis=0)
    norms = np.linalg.norm(tangents, axis=1, keepdims=True)
    tangents = tangents / np.where(norms < 1e-12, 1.0, norms)
    term = forward.termination if forward.termination != "cap" else backward.termination
    return FieldLine(points=pts, tangents=tangents, magnitudes=mags, termination=term)


def seed_density_proportional_batched(
    mesh: HexMesh,
    field_fn,
    total_lines: int = 200,
    field_name: str = "E",
    batch_size: int = 8,
    step: float | None = None,
    max_steps: int = 300,
    min_magnitude_fraction: float = 1e-3,
    rng=None,
) -> OrderedFieldLines:
    """Deprecated alias: use ``seed_density_proportional(...,
    batch_size=N)`` (or ``workers=N``) instead."""
    warnings.warn(
        "seed_density_proportional_batched is deprecated; call "
        "repro.fieldlines.seeding.seed_density_proportional(..., "
        "batch_size=N) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _seed_batched(
        mesh, field_fn, total_lines=total_lines, field_name=field_name,
        batch_size=batch_size, step=step, max_steps=max_steps,
        min_magnitude_fraction=min_magnitude_fraction, rng=rng,
    )


def _seed_batched(
    mesh: HexMesh,
    field_fn,
    total_lines: int = 200,
    field_name: str = "E",
    batch_size: int = 8,
    step: float | None = None,
    max_steps: int = 300,
    min_magnitude_fraction: float = 1e-3,
    rng=None,
    workers: int = 1,
    _shard_fn=None,
) -> OrderedFieldLines:
    """Round-based batched version of the density-proportional seeder.

    ``batch_size`` lines integrate simultaneously per round; with
    ``batch_size=1`` this reduces exactly to the greedy algorithm.
    ``workers > 1`` integrates each round on worker processes (see the
    module docstring for the failure semantics); the line ordering and
    geometry are identical to the in-process batched path.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = rng or np.random.default_rng(0)
    desired = desired_line_counts(mesh, field_name, total_lines)
    remaining = desired.copy()
    achieved = np.zeros_like(desired)
    counter = _ElementVisitCounter(mesh)

    if step is None:
        vols = mesh.element_volumes()
        step = 0.5 * float(np.cbrt(vols.mean()))
    peak = float(mesh.element_field_intensity(field_name).max())
    floor = peak * min_magnitude_fraction

    lines: list[FieldLine] = []
    while len(lines) < total_lines:
        want = min(batch_size, total_lines - len(lines))
        # the `want` most-needy distinct elements, by descending need
        order = np.argsort(-remaining, kind="stable")[:want]
        order = order[remaining[order] > 0]
        if order.size == 0:
            break
        seeds = _random_points_in_elements(mesh, order, rng)
        fwd, bwd = _integrate_round(
            field_fn, seeds, step, max_steps, floor, workers,
            _shard_fn=_shard_fn,
        )
        batch_lines = [
            _stitch(f_half, b_half, field_fn, floor)
            for f_half, b_half in zip(fwd, bwd)
        ]
        # one fused KD-tree query for the whole round's visit accounting
        all_visits = counter.visits_batch([ln.points for ln in batch_lines])
        for line, visited in zip(batch_lines, all_visits):
            line.order = len(lines)
            remaining[visited] -= 1.0
            achieved[visited] += 1.0
            lines.append(line)
            count("lines_seeded")

    return OrderedFieldLines(
        lines=lines,
        desired=desired,
        achieved=achieved,
        field_name=field_name,
        meta={
            "step": step,
            "floor": floor,
            "total_requested": int(total_lines),
            "batch_size": int(batch_size),
            "workers": int(workers),
        },
    )
