"""PPM I/O and image metrics."""

import numpy as np
import pytest

from repro.render.image import coverage, psnr, read_ppm, structural_detail, write_ppm


class TestPPM:
    def test_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, (17, 23, 3), dtype=np.uint8)
        path = tmp_path / "t.ppm"
        write_ppm(path, img)
        back = read_ppm(path)
        assert np.array_equal(back, img)

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4, 3), dtype=np.float64))

    def test_rejects_non_p6(self, tmp_path):
        p = tmp_path / "bad.ppm"
        p.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError):
            read_ppm(p)

    def test_reads_comments(self, tmp_path):
        p = tmp_path / "c.ppm"
        p.write_bytes(b"P6\n# a comment\n2 1\n255\n" + bytes(6))
        img = read_ppm(p)
        assert img.shape == (1, 2, 3)


class TestPSNR:
    def test_identical_is_inf(self):
        img = np.full((8, 8, 3), 100, dtype=np.uint8)
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4, 3))
        b = np.full((4, 4, 3), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-9)

    def test_mixed_dtypes(self):
        a = np.zeros((2, 2, 3), dtype=np.uint8)
        b = np.zeros((2, 2, 3))
        assert psnr(a, b) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2, 3)), np.zeros((3, 2, 3)))


class TestCoverage:
    def test_empty_image(self):
        assert coverage(np.zeros((8, 8, 3))) == 0.0

    def test_half_covered(self):
        img = np.zeros((2, 2, 3))
        img[0] = 1.0
        assert coverage(img) == pytest.approx(0.5)

    def test_custom_background(self):
        img = np.ones((4, 4, 3))
        assert coverage(img, background=[1.0, 1.0, 1.0]) == 0.0


class TestStructuralDetail:
    def test_flat_image_zero(self):
        assert structural_detail(np.full((8, 8, 3), 0.5)) == 0.0

    def test_bands_raise_detail(self):
        flat = np.full((16, 16, 3), 0.5)
        banded = flat.copy()
        banded[::2] = 0.1
        assert structural_detail(banded) > structural_detail(flat)


class TestPNG:
    def test_valid_png_structure(self, tmp_path, rng):
        from repro.render.image import write_png

        img = rng.integers(0, 256, (9, 13, 3), dtype=np.uint8)
        path = tmp_path / "t.png"
        write_png(path, img)
        data = path.read_bytes()
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        assert b"IHDR" in data and b"IDAT" in data and data.endswith(
            b"IEND" + (0xAE426082).to_bytes(4, "big")
        )

    def test_dimensions_encoded(self, tmp_path):
        import struct

        from repro.render.image import write_png

        path = tmp_path / "d.png"
        write_png(path, np.zeros((7, 11, 3), dtype=np.uint8))
        data = path.read_bytes()
        w, h = struct.unpack(">II", data[16:24])
        assert (w, h) == (11, 7)

    def test_payload_decompresses_to_pixels(self, tmp_path, rng):
        import struct
        import zlib

        from repro.render.image import write_png

        img = rng.integers(0, 256, (4, 5, 3), dtype=np.uint8)
        path = tmp_path / "p.png"
        write_png(path, img)
        data = path.read_bytes()
        # locate the IDAT chunk and inflate it
        i = data.index(b"IDAT")
        (length,) = struct.unpack(">I", data[i - 4 : i])
        raw = zlib.decompress(data[i + 4 : i + 4 + length])
        rows = [
            raw[r * (1 + 5 * 3) + 1 : (r + 1) * (1 + 5 * 3)] for r in range(4)
        ]
        recovered = np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(4, 5, 3)
        assert np.array_equal(recovered, img)

    def test_rejects_bad_input(self, tmp_path):
        from repro.render.image import write_png

        with pytest.raises(ValueError):
            write_png(tmp_path / "x.png", np.zeros((4, 4, 3)))
