"""The one-release compatibility shims: old call shapes warn, results match."""

import warnings

import numpy as np
import pytest

from repro.core.dataset import as_dataset
from repro.hybrid.renderer import HybridRenderer
from repro.octree.extraction import extract
from repro.octree.partition import partition
from repro.render.camera import Camera
from repro.render.points import point_fragments
from repro.render.volume import render_mixed


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(41)
    return rng.normal(0.0, 0.5, (6_000, 6))


class TestPartitionShims:
    def test_raw_array_warns_and_matches(self, particles):
        with pytest.warns(DeprecationWarning, match="open_dataset"):
            old = partition(particles, "xyz", max_level=4, capacity=32)
        new = partition(as_dataset(particles), "xyz", max_level=4, capacity=32)
        assert np.array_equal(old.nodes, new.nodes)
        assert np.array_equal(old.particles, new.particles)

    def test_positional_tuning_warns_and_matches(self, particles):
        ds = as_dataset(particles)
        with pytest.warns(DeprecationWarning, match="keyword"):
            old = partition(ds, "xyz", 4, 32)
        new = partition(ds, "xyz", max_level=4, capacity=32)
        assert np.array_equal(old.nodes, new.nodes)
        assert np.array_equal(old.particles, new.particles)
        assert old.max_level == 4 and old.capacity == 32

    def test_too_many_positionals_rejected(self, particles):
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            partition(as_dataset(particles), "xyz", 4, 32, None, None, 0, 1, 1, 99)

    def test_keyword_shape_is_silent(self, particles):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            partition(as_dataset(particles), "xyz", max_level=4, capacity=32)

    def test_dataset_step_inherited(self, particles):
        pf = partition(as_dataset(particles, step=13), "xyz", max_level=3)
        assert pf.step == 13


class TestExtractShims:
    @pytest.fixture(scope="class")
    def frame(self, particles):
        return partition(as_dataset(particles), "xyz", max_level=4, capacity=32)

    def test_positional_tuning_warns_and_matches(self, frame):
        t = float(np.percentile(frame.nodes["density"], 50))
        with pytest.warns(DeprecationWarning, match="keyword"):
            old = extract(frame, t, 16, "rest")
        new = extract(frame, t, volume_resolution=16, volume_from="rest")
        assert np.array_equal(old.volume, new.volume)
        assert np.array_equal(old.points, new.points)

    def test_keyword_shape_is_silent(self, frame):
        t = float(np.percentile(frame.nodes["density"], 50))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            extract(frame, t, volume_resolution=16)


class TestRenderMixedShims:
    def test_positional_fragments_warn_and_match(self):
        rng = np.random.default_rng(6)
        camera = Camera.fit_bounds([-1, -1, -1], [1, 1, 1], width=64, height=64)
        pos = rng.uniform(-0.8, 0.8, (500, 3))
        rgba = np.concatenate(
            [rng.uniform(0.2, 1.0, (500, 3)), np.full((500, 1), 0.6)], axis=1
        )
        frags = point_fragments(camera, pos, rgba)
        with pytest.warns(DeprecationWarning, match="keyword"):
            old = render_mixed(camera, None, [-1] * 3, [1] * 3, frags)
        new = render_mixed(camera, None, [-1] * 3, [1] * 3, point_fragments=frags)
        assert np.array_equal(old.rgba, new.rgba)

    def test_renderer_paths_are_silent(self, hybrid_frame):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cam = Camera.fit_bounds(
                hybrid_frame.lo, hybrid_frame.hi, width=48, height=48
            )
            HybridRenderer(n_slices=16).render(hybrid_frame, camera=cam)
