"""Remote visualization (paper sections 1, 2.1).

"Because of the collaborative nature of the overall accelerator
modeling project, the visualization technology developed is for both
desktop and remote visualization settings. ...  the storage savings
mean that the data can be more efficiently transferred from the
computer where it was generated to a remote computer on a scientist's
desk thousands of miles away."

A :class:`VisualizationServer` holds partitioned frames (the
supercomputer side); a :class:`VisualizationClient` requests hybrid
extractions at a chosen threshold and receives them over a socket with
an optional bandwidth throttle, so the bytes-per-frame /
interactivity tradeoff can be measured.

Modules
-------
protocol   length-prefixed message framing and payload codecs
server     the data-side daemon (partitioned store + extraction)
client     the desktop side (requests, timing, byte accounting)
"""

from repro.remote.protocol import Message, MessageType
from repro.remote.server import VisualizationServer
from repro.remote.client import VisualizationClient

__all__ = ["Message", "MessageType", "VisualizationServer", "VisualizationClient"]
