"""Frame-geometry cache correctness: bit-identity and invalidation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.octree.amr import AmrVolume
from repro.render.amr import AmrRgbaVolume, amr_geometry_key
from repro.render.camera import Camera
from repro.render.frame_cache import (
    FrameGeometry,
    FrameGeometryCache,
    frame_geometry_cache,
    geometry_key,
)
from repro.render.points import point_fragments
from repro.render.volume import render_mixed, render_volume


@pytest.fixture
def scene(rng):
    vol = rng.random((12, 14, 10, 4))
    vol[..., 3] *= 0.3
    lo = np.array([-1.0, -1.0, -1.0])
    hi = np.array([1.0, 1.2, 0.8])
    camera = Camera(eye=(2.5, 1.5, 3.0), target=(0, 0, 0), width=48, height=40)
    pts = rng.normal(0, 0.5, (500, 3))
    cols = rng.random((500, 4))
    frags = point_fragments(camera, pts, cols, point_size=1)
    return camera, vol, lo, hi, frags


class TestBitIdentity:
    def test_cached_equals_uncached(self, scene):
        camera, vol, lo, hi, frags = scene
        cache = FrameGeometryCache()
        uncached = render_mixed(
            camera, vol, lo, hi, point_fragments=frags, n_slices=24, cache=False
        )
        cold = render_mixed(
            camera, vol, lo, hi, point_fragments=frags, n_slices=24, cache=cache
        )
        warm = render_mixed(
            camera, vol, lo, hi, point_fragments=frags, n_slices=24, cache=cache
        )
        assert np.array_equal(uncached.rgba, cold.rgba)
        assert np.array_equal(uncached.rgba, warm.rgba)
        assert np.array_equal(uncached.depth, warm.depth)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_volume_only_bit_identical(self, scene):
        camera, vol, lo, hi, _ = scene
        cache = FrameGeometryCache()
        a = render_volume(camera, vol, lo, hi, n_slices=16, cache=False)
        b = render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        c = render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        assert np.array_equal(a.rgba, b.rgba)
        assert np.array_equal(a.rgba, c.rgba)

    def test_contents_change_reuses_geometry(self, scene):
        """New volume contents with the same grid reuse cached geometry
        and still render exactly as the uncached path would."""
        camera, vol, lo, hi, _ = scene
        cache = FrameGeometryCache()
        render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        vol2 = np.sqrt(vol)
        warm = render_volume(camera, vol2, lo, hi, n_slices=16, cache=cache)
        ref = render_volume(camera, vol2, lo, hi, n_slices=16, cache=False)
        assert cache.stats()["hits"] == 1  # same geometry served both frames
        assert np.array_equal(warm.rgba, ref.rgba)


class TestInvalidation:
    def test_camera_move_is_new_entry(self, scene):
        camera, vol, lo, hi, _ = scene
        cache = FrameGeometryCache()
        render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        moved = Camera(
            eye=(2.6, 1.5, 3.0), target=(0, 0, 0), width=48, height=40
        )
        render_volume(moved, vol, lo, hi, n_slices=16, cache=cache)
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2

    def test_resolution_change_is_new_entry(self, scene):
        camera, vol, lo, hi, _ = scene
        cache = FrameGeometryCache()
        render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        vol_hi = np.repeat(vol, 2, axis=0)
        render_volume(camera, vol_hi, lo, hi, n_slices=16, cache=cache)
        assert cache.stats()["misses"] == 2

    def test_slice_count_and_bounds_in_key(self, scene):
        camera, vol, lo, hi, _ = scene
        k0 = geometry_key(camera, vol.shape[:3], lo, hi, 16)
        assert geometry_key(camera, vol.shape[:3], lo, hi, 32) != k0
        assert geometry_key(camera, vol.shape[:3], lo, hi + 0.1, 16) != k0
        assert geometry_key(camera, vol.shape[:3], lo, hi, 16) == k0

    def test_transfer_function_mutation_renders_fresh(self, scene):
        """The transfer function is applied per frame on top of cached
        geometry: editing it changes the image without a rebuild."""
        camera, vol, lo, hi, _ = scene
        cache = FrameGeometryCache()
        a = render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        edited = vol.copy()
        edited[..., 3] = np.clip(edited[..., 3] * 2.0, 0.0, 1.0)
        b = render_volume(camera, edited, lo, hi, n_slices=16, cache=cache)
        assert cache.stats() == {
            "hits": 1, "misses": 1,
            "entries": 1, "bytes": cache.total_bytes,
        }
        assert not np.array_equal(a.rgba, b.rgba)


class TestCachePolicy:
    def test_lru_entry_bound(self, scene):
        camera, vol, lo, hi, _ = scene
        cache = FrameGeometryCache(max_entries=2)
        for n in (8, 12, 16):
            render_volume(camera, vol, lo, hi, n_slices=n, cache=cache)
        assert len(cache) == 2
        assert geometry_key(camera, vol.shape[:3], lo, hi, 8) not in cache
        assert geometry_key(camera, vol.shape[:3], lo, hi, 16) in cache

    def test_byte_budget_evicts(self, scene):
        camera, vol, lo, hi, _ = scene
        probe = FrameGeometry.build(camera, vol.shape[:3], lo, hi, 16)
        cache = FrameGeometryCache(max_entries=8, max_bytes=probe.nbytes + 1)
        render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        render_volume(camera, vol, lo, hi, n_slices=24, cache=cache)
        assert len(cache) == 1  # first entry evicted to fit the budget

    def test_empty_cache_is_truthy(self):
        assert FrameGeometryCache()

    def test_clear(self, scene):
        camera, vol, lo, hi, _ = scene
        cache = FrameGeometryCache()
        render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        cache.clear()
        assert len(cache) == 0
        render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        assert cache.stats()["misses"] == 2

    def test_global_cache_is_default(self, scene):
        camera, vol, lo, hi, _ = scene
        global_cache = frame_geometry_cache()
        global_cache.clear()
        before = global_cache.stats()["misses"]
        render_volume(camera, vol, lo, hi, n_slices=16)
        render_volume(camera, vol, lo, hi, n_slices=16)
        after = global_cache.stats()
        assert after["misses"] == before + 1
        assert after["hits"] >= 1
        global_cache.clear()

    def test_explicit_geometry_overrides(self, scene):
        camera, vol, lo, hi, _ = scene
        geo = FrameGeometry.build(camera, vol.shape[:3], lo, hi, 16)
        cache = FrameGeometryCache()
        fb = render_volume(
            camera, vol, lo, hi, n_slices=16, cache=cache, geometry=geo
        )
        ref = render_volume(camera, vol, lo, hi, n_slices=16, cache=False)
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0, "bytes": 0}
        assert np.array_equal(fb.rgba, ref.rgba)


def _toy_amr(rng, lo, hi, bricks=2, brick_cells=4):
    """A small hand-built AMR volume: one empty brick, one refined."""
    levels = np.zeros((bricks,) * 3, dtype=np.int8)
    levels[0, 0, 0] = -1
    levels[1, 1, 1] = 1
    cells = sum(
        (brick_cells << int(l)) ** 3 for l in levels.ravel() if l >= 0
    )
    data = rng.random(cells).astype(np.float32)
    return AmrVolume(lo, hi, bricks, brick_cells, levels, data)


class TestAmrKeys:
    def test_amr_key_disjoint_from_flat(self, scene, rng):
        """An AMR key can never equal any flat key -- not even a flat
        volume whose grid shape happens to match the brick-geometry
        slot -- because the ("amr", level_hash) suffix changes arity."""
        camera, _, lo, hi, _ = scene
        amr = _toy_amr(rng, lo, hi)
        akey = amr_geometry_key(camera, amr, 16)
        collider = geometry_key(
            camera,
            (amr.bricks, amr.brick_cells, amr.total_cells),
            lo, hi, 16,
        )
        assert akey[: len(collider)] == collider
        assert akey != collider
        assert akey[-2:] == ("amr", amr.level_hash)

    def test_level_map_participates_in_key(self, scene, rng):
        camera, _, lo, hi, _ = scene
        a = _toy_amr(rng, lo, hi)
        k0 = amr_geometry_key(camera, a, 16)
        # same manifest, different contents: same key (contents are
        # applied per frame, exactly like the flat path)
        same = AmrVolume(
            lo, hi, a.bricks, a.brick_cells, a.levels,
            np.zeros_like(a.data),
        )
        assert amr_geometry_key(camera, same, 16) == k0
        # refine one more brick: new manifest, new key
        levels2 = a.levels.copy()
        levels2[0, 1, 0] = 1
        cells2 = sum(
            (a.brick_cells << int(l)) ** 3 for l in levels2.ravel() if l >= 0
        )
        refined = AmrVolume(
            lo, hi, a.bricks, a.brick_cells, levels2,
            np.zeros(cells2, np.float32),
        )
        assert amr_geometry_key(camera, refined, 16) != k0

    def test_amr_and_flat_share_cache_without_collision(self, scene, rng):
        """Flat and AMR geometries for the same camera/bounds/slicing
        coexist in one cache as distinct entries, and the warm AMR
        render is bitwise-identical to the uncached one."""
        camera, vol, lo, hi, _ = scene
        amr = _toy_amr(rng, lo, hi)
        classified = AmrRgbaVolume(
            amr, rng.random((amr.total_cells, 4))
        )
        cache = FrameGeometryCache()
        render_volume(camera, vol, lo, hi, n_slices=16, cache=cache)
        cold = render_mixed(
            camera, classified, lo, hi, n_slices=16, cache=cache
        )
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2
        assert amr_geometry_key(camera, amr, 16) in cache
        assert geometry_key(camera, vol.shape[:3], lo, hi, 16) in cache
        warm = render_mixed(
            camera, classified, lo, hi, n_slices=16, cache=cache
        )
        fresh = render_mixed(
            camera, classified, lo, hi, n_slices=16, cache=False
        )
        assert cache.stats()["hits"] == 1
        assert np.array_equal(cold.rgba, warm.rgba)
        assert np.array_equal(fresh.rgba, warm.rgba)


class _StubGeometry:
    """Minimal nbytes-bearing stand-in for eviction accounting tests."""

    def __init__(self, nbytes):
        self.nbytes = int(nbytes)


class TestEvictionProperties:
    @given(
        sizes=st.lists(st.integers(1, 1_000), min_size=1, max_size=40),
        max_bytes=st.integers(1, 2_000),
        max_entries=st.integers(1, 12),
    )
    @settings(max_examples=200, deadline=None)
    def test_byte_exact_lru_eviction(self, sizes, max_bytes, max_entries):
        """For any insertion sequence of mixed flat/AMR-arity keys and
        any budget: the survivors are exactly the most-recent suffix,
        total_bytes is the exact sum of survivor nbytes, and the budget
        holds whenever more than one entry remains."""
        cache = FrameGeometryCache(max_entries=max_entries, max_bytes=max_bytes)
        keys = []
        for i, nb in enumerate(sizes):
            # alternate key arities, mirroring flat (12) vs AMR (14) keys
            key = ("k",) * (12 + 2 * (i % 2)) + (i,)
            keys.append((key, nb))
            cache.get_keyed(key, lambda nb=nb: _StubGeometry(nb))
            assert len(cache) <= max_entries
            assert cache.total_bytes == sum(
                g.nbytes for g in cache._entries.values()
            )
            if len(cache) > 1:
                assert cache.total_bytes <= max_bytes
            # survivors are a contiguous most-recently-inserted suffix
            survivors = [k for k, _ in keys if k in cache]
            assert survivors == [k for k, _ in keys[len(keys) - len(survivors):]]
        assert cache.stats()["misses"] == len(sizes)

    @given(sizes=st.lists(st.integers(1, 100), min_size=2, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_rehit_refreshes_lru_rank(self, sizes):
        """Re-fetching the oldest key promotes it past the next eviction."""
        cache = FrameGeometryCache(max_entries=2, max_bytes=1 << 30)
        k = [("k", i) for i in range(3)]
        cache.get_keyed(k[0], lambda: _StubGeometry(sizes[0]))
        cache.get_keyed(k[1], lambda: _StubGeometry(sizes[1]))
        cache.get_keyed(k[0], lambda: _StubGeometry(0))  # hit, promotes
        cache.get_keyed(k[2], lambda: _StubGeometry(sizes[-1]))
        assert k[0] in cache and k[2] in cache and k[1] not in cache
        assert cache.stats()["hits"] == 1


class TestGeometry:
    def test_sample_matches_trilinear(self, scene, rng):
        """The CSR resampling rows reproduce trilinear_sample exactly
        where the slice is inside the volume."""
        from repro.render.volume import trilinear_sample

        camera, vol, lo, hi, _ = scene
        geo = FrameGeometry.build(camera, vol.shape[:3], lo, hi, 8)
        flat = vol.reshape(-1, 4)
        samples = geo.sample(flat)
        # rebuild slice-0 coordinates independently
        origins, dirs = camera.pixel_rays()
        cos = np.maximum(dirs @ camera.forward, 1e-9)
        t = geo.depths[0] / cos
        pts = origins + dirs * t[:, None]
        coords = (pts - lo) / np.maximum(hi - lo, 1e-300)
        ref = trilinear_sample(vol, coords)
        rows = geo.slice_rows(0)
        assert np.allclose(samples[rows], ref[geo.pix[rows]], atol=1e-12)

    def test_empty_when_volume_behind_camera(self, scene):
        _, vol, lo, hi, _ = scene
        away = Camera(eye=(0, 0, 10.0), target=(0, 0, 20.0), width=16, height=16)
        geo = FrameGeometry.build(away, vol.shape[:3], lo, hi, 8)
        assert geo.empty
        fb = render_volume(away, vol, lo, hi, n_slices=8, geometry=geo)
        assert np.all(fb.rgba == 0.0)
