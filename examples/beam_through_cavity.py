"""Particles accelerated through a cavity -- closing Figure 9's loop.

"Charged particles, under the influence of the propagating field,
would be accelerated from left to right."  This example puts the two
halves of the library together: a bunch is Boris-tracked through the
pi-mode field of a 3-cell structure, the field itself is drawn as
self-orienting strips over the structure outline, and the particle
trajectories are overlaid as ribbons oriented by the local B field.

    python examples/beam_through_cavity.py
"""

from pathlib import Path

import numpy as np

from repro.beams.cavity import CavityTracker
from repro.beams.distributions import PZ, Z, gaussian_beam
from repro.fieldlines.integrate import FieldLine
from repro.fieldlines.seeding import seed_density_proportional
from repro.fieldlines.sos import build_strips
from repro.fields.geometry import make_multicell_structure
from repro.fields.modes import multicell_standing_wave
from repro.fields.sampling import AnalyticSampler
from repro.render.camera import Camera
from repro.render.image import write_ppm
from repro.render.scene import Scene

OUT = Path(__file__).parent / "output"
OUT.mkdir(exist_ok=True)


def main() -> None:
    structure = make_multicell_structure(3, n_xy=6, n_z_per_unit=6)
    mode = multicell_standing_wave(structure, amplitude=0.25)
    mesh = structure.mesh
    mesh.set_field("E", mode.e_field(mesh.vertices, 0.0))

    # ---- launch a bunch at the entrance --------------------------------
    # pi-mode synchronism: a particle should cross one cell pitch per
    # half RF period, so inject at v = pitch / (T/2)
    pitch = structure.profile.cell_length + structure.profile.iris_length
    half_period = np.pi / mode.omega
    v_sync = min(pitch / half_period, 0.97)
    n = 400
    bunch = gaussian_beam(
        n, sigmas=(0.08, 0.08, 0.05, 0.01, 0.01, 0.01),
        rng=np.random.default_rng(3),
    )
    bunch[:, Z] += 0.2           # just inside the first iris
    bunch[:, PZ] += v_sync
    pz0 = bunch[:, PZ].mean()

    tracker = CavityTracker(mode=mode, structure=structure)
    dt = 0.02
    n_steps = int(1.2 * structure.length / v_sync / dt)
    print(
        f"tracking {n} particles through {structure.n_cells} cells "
        f"at v_sync={v_sync:.2f} ({n_steps} Boris steps)..."
    )
    snaps = tracker.run(bunch, dt, n_steps, trajectory_every=4)
    pz1 = bunch[:, PZ].mean()
    exited = (bunch[:, Z] > structure.length).mean()
    lost = (
        ~structure.inside(bunch[:, :3]) & (bunch[:, Z] <= structure.length)
    ).mean()
    print(
        f"  mean pz {pz0:.3f} -> {pz1:.3f} "
        f"({'+' if pz1 > pz0 else ''}{100 * (pz1 / pz0 - 1):.1f}%); "
        f"{100 * exited:.0f}% exited downstream, {100 * lost:.0f}% hit the wall"
    )

    # ---- compose the scene (one depth-correct pass) ---------------------
    cam = Camera.fit_bounds(
        *structure.bounds(), width=384, height=288, direction=(0.2, 0.75, 0.6)
    )
    sampler = AnalyticSampler(mode, "E", t=0.0, structure=structure)
    field_lines = seed_density_proportional(
        mesh, sampler, total_lines=70, field_name="E",
        rng=np.random.default_rng(1),
    )
    strips = build_strips(field_lines.lines, cam, width=0.018)

    # particle trajectories as lines (every 12th particle)
    traj_lines = []
    positions = np.stack([p for _, p in snaps])  # (T, N, 3)
    for j in range(0, n, 12):
        pts = positions[:, j, :]
        t = np.gradient(pts, axis=0)
        norms = np.linalg.norm(t, axis=1, keepdims=True)
        t = t / np.where(norms < 1e-12, 1.0, norms)
        traj_lines.append(
            FieldLine(points=pts, tangents=t, magnitudes=np.linspace(0.3, 1, len(pts)))
        )
    traj_strips = build_strips(traj_lines, cam, width=0.012)

    scene = (
        Scene(cam)
        .add_wireframe_structure(structure, half="back", alpha=0.35)
        .add_strips(strips, colormap="electric", alpha=0.55)
        .add_strips(traj_strips, colormap="magnetic")
    )
    fb = scene.render()
    write_ppm(OUT / "beam_through_cavity.ppm", fb.to_rgb8())
    print(f"composite scene written to {OUT}/beam_through_cavity.ppm")


if __name__ == "__main__":
    main()
