"""The desktop-side visualization client.

Requests hybrid extractions from a :class:`VisualizationServer`,
timing each transfer and accounting bytes -- the measurements behind
the paper's claim that compact hybrid frames make remote exploration
practical ("quickly transferring over a network", section 2.3).
"""

from __future__ import annotations

import socket
import time

from repro.core.trace import count, span
from repro.hybrid.representation import HybridFrame
from repro.remote import protocol
from repro.remote.protocol import Message, MessageType

__all__ = ["VisualizationClient"]


class VisualizationClient:
    """Connects to a server and fetches hybrid frames."""

    def __init__(self, address, timeout: float = 30.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.stats = {"bytes_received": 0, "frames": 0, "seconds": 0.0}

    def close(self) -> None:
        self.sock.close()

    def __enter__(self) -> "VisualizationClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def list_frames(self):
        """Step indices of the frames the server holds."""
        protocol.send_message(self.sock, Message(MessageType.LIST_FRAMES))
        reply = protocol.recv_message(self.sock)
        self._check(reply, MessageType.FRAME_LIST)
        return protocol.decode_frame_list(reply.payload)

    def get_hybrid(
        self, frame_index: int, threshold: float, resolution: int = 64
    ) -> HybridFrame:
        """Request one extraction; timing lands in ``stats``."""
        t0 = time.perf_counter()
        with span("remote_fetch", frame=frame_index):
            protocol.send_message(
                self.sock,
                Message(
                    MessageType.GET_HYBRID,
                    protocol.encode_get_hybrid(frame_index, threshold, resolution),
                ),
            )
            reply = protocol.recv_message(self.sock)
        elapsed = time.perf_counter() - t0
        self._check(reply, MessageType.HYBRID_FRAME)
        self.stats["bytes_received"] += len(reply.payload)
        self.stats["frames"] += 1
        self.stats["seconds"] += elapsed
        count("remote_bytes_received", len(reply.payload))
        return protocol.decode_hybrid(reply.payload)

    def throughput_bps(self) -> float:
        """Mean received throughput over all requests so far."""
        if self.stats["seconds"] <= 0:
            return 0.0
        return self.stats["bytes_received"] / self.stats["seconds"]

    @staticmethod
    def _check(reply: Message, expected: MessageType) -> None:
        if reply.type == MessageType.ERROR:
            raise RuntimeError(f"server error: {reply.payload.decode()}")
        if reply.type != expected:
            raise RuntimeError(f"expected {expected}, got {reply.type}")
