"""Two-pass out-of-core partitioning: bit-identical to the in-core path."""

import numpy as np
import pytest

from repro.core.dataset import as_dataset
from repro.core.errors import SimulatedCrash
from repro.core.faults import FaultPlan
from repro.core.store import create_store
from repro.core.trace import capture
from repro.octree.extraction import extract
from repro.octree.octree import Octree, leaf_for_keys, morton_keys
from repro.octree.partition import partition
from repro.octree.stream_partition import NODES_FILE, PartitionedStore, partition_store


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(31)
    core = rng.normal(0.0, 0.3, (30_000, 6))
    halo = rng.normal(0.0, 2.0, (2_000, 6))
    return np.vstack([core, halo])


@pytest.fixture(scope="module")
def incore(particles):
    return partition(as_dataset(particles), "xyz", max_level=5, capacity=48, step=7)


@pytest.fixture(scope="module")
def store(tmp_path_factory, particles):
    return create_store(
        tmp_path_factory.mktemp("src") / "store", particles, shard_rows=4096, step=7
    )


def assert_frames_identical(ps: PartitionedStore, pf) -> None:
    """Bit-for-bit: node table, bounds, and the particle file."""
    assert np.array_equal(ps.nodes, pf.nodes)
    assert np.array_equal(ps.lo, pf.lo) and np.array_equal(ps.hi, pf.hi)
    assert ps.step == pf.step
    assert ps.plot_type == pf.plot_type
    assert np.array_equal(ps.store.to_array(), pf.particles)


class TestEquivalence:
    def test_store_input_bitwise(self, tmp_path, store, incore):
        ps = partition_store(
            store, tmp_path / "out", "xyz", max_level=5, capacity=48
        )
        assert_frames_identical(ps, incore)
        ps.validate()

    def test_array_input_bitwise(self, tmp_path, particles, incore):
        ps = partition_store(
            particles, tmp_path / "out", "xyz", max_level=5, capacity=48, step=7
        )
        assert_frames_identical(ps, incore)

    def test_parallel_workers_bitwise(self, tmp_path, store, incore):
        ps = partition_store(
            store, tmp_path / "out", "xyz", max_level=5, capacity=48, workers=2
        )
        assert_frames_identical(ps, incore)

    def test_other_plot_type(self, tmp_path, store, particles):
        pf = partition(as_dataset(particles), "xpxy", max_level=4, capacity=64, step=7)
        ps = partition_store(
            store, tmp_path / "out", "xpxy", max_level=4, capacity=64
        )
        assert_frames_identical(ps, pf)

    def test_open_round_trip(self, tmp_path, store, incore):
        partition_store(store, tmp_path / "out", "xyz", max_level=5, capacity=48)
        ps = PartitionedStore.open(tmp_path / "out")
        assert_frames_identical(ps, incore)
        assert ps.to_frame().n_particles == incore.n_particles

    def test_passes_traced(self, tmp_path, store):
        with capture(enabled=True) as tracer:
            partition_store(store, tmp_path / "out", "xyz", max_level=4, capacity=64)
        assert tracer.counters["stream_partition_pass"] == 2
        assert tracer.counters["particles_routed"] == store.n_particles
        assert tracer.counters["store_shard_read"] >= 2 * store.n_shards
        assert tracer.gauges["peak_rss_bytes"] > 0


class TestCheckpointResume:
    def test_torn_write_then_resume_identical(self, tmp_path, store, incore):
        """A crash torn mid-write of a per-shard artifact must leave a
        resumable checkpoint; the resumed run matches the in-core
        result bit for bit."""
        plan = FaultPlan(seed=5, torn_write=0.3)
        ck = tmp_path / "ck"
        with pytest.raises(SimulatedCrash):
            with plan.file_faults():
                partition_store(
                    store, tmp_path / "out", "xyz",
                    max_level=5, capacity=48, checkpoint_dir=ck,
                )
        with capture(enabled=True) as tracer:
            ps = partition_store(
                store, tmp_path / "out", "xyz",
                max_level=5, capacity=48, checkpoint_dir=ck,
            )
        assert_frames_identical(ps, incore)
        # the resumed run must not have redone everything from scratch
        done = tracer.counters.get("stream_partition_pass", 0)
        assert done <= 2

    def test_resume_after_finalize_is_noop(self, tmp_path, store, incore):
        ck = tmp_path / "ck"
        partition_store(
            store, tmp_path / "out", "xyz", max_level=5, capacity=48,
            checkpoint_dir=ck,
        )
        with capture(enabled=True) as tracer:
            ps = partition_store(
                store, tmp_path / "out", "xyz", max_level=5, capacity=48,
                checkpoint_dir=ck,
            )
        assert tracer.counters["checkpoint_stages_resumed"] == 1
        assert "stream_partition_pass" not in tracer.counters
        assert_frames_identical(ps, incore)

    def test_without_checkpoint_workdir_removed(self, tmp_path, store):
        out = tmp_path / "out"
        partition_store(store, out, "xyz", max_level=4, capacity=64)
        assert not (out / "_work").exists()
        assert (out / NODES_FILE).is_file()


class TestStreamingExtraction:
    def test_hybrid_matches_incore_within_one_ulp(self, tmp_path, store, incore):
        ps = partition_store(store, tmp_path / "out", "xyz", max_level=5, capacity=48)
        threshold = float(np.percentile(incore.nodes["density"], 60))
        a = extract(incore, threshold, volume_resolution=24)
        b = extract(ps, threshold, volume_resolution=24)
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.point_densities, b.point_densities)
        np.testing.assert_array_max_ulp(a.volume, b.volume, maxulp=1)
        assert a.threshold == b.threshold and a.step == b.step

    def test_volume_from_rest(self, tmp_path, store, incore):
        ps = partition_store(store, tmp_path / "out", "xyz", max_level=5, capacity=48)
        threshold = float(np.percentile(incore.nodes["density"], 60))
        a = extract(incore, threshold, volume_resolution=16, volume_from="rest")
        b = extract(ps, threshold, volume_resolution=16, volume_from="rest")
        np.testing.assert_array_max_ulp(a.volume, b.volume, maxulp=1)

    def test_point_attributes_streaming(self, tmp_path, store, incore):
        ps = partition_store(store, tmp_path / "out", "xyz", max_level=5, capacity=48)
        threshold = float(np.percentile(incore.nodes["density"], 60))
        a = extract(incore, threshold, volume_resolution=16,
                    point_attributes=("pmag",))
        b = extract(ps, threshold, volume_resolution=16,
                    point_attributes=("pmag",))
        assert np.array_equal(a.attributes["pmag"], b.attributes["pmag"])

    def test_density_cutoff_matches(self, tmp_path, store, incore):
        ps = partition_store(store, tmp_path / "out", "xyz", max_level=5, capacity=48)
        for q in (10, 50, 90):
            t = float(np.percentile(incore.nodes["density"], q))
            assert ps.density_cutoff_index(t) == incore.density_cutoff_index(t)

    def test_read_prefix_is_file_prefix(self, tmp_path, store, incore):
        ps = partition_store(store, tmp_path / "out", "xyz", max_level=5, capacity=48)
        assert np.array_equal(ps.read_prefix(5000), incore.particles[:5000])


class TestBoundaryParticles:
    """Regression: particles exactly on the octree's max corner must
    land in the last cell, never out of range."""

    def test_keys_clamped_at_max_corner(self):
        lo = np.zeros(3)
        hi = np.ones(3)
        coords = np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0], [1.0, 0.5, 1.0]])
        keys = morton_keys(coords, lo, hi, max_level=4)
        assert keys.max() < np.uint64(8) ** np.uint64(4)

    def test_leaf_for_keys_covers_boundary(self):
        rng = np.random.default_rng(2)
        coords = rng.uniform(0.0, 1.0, (4000, 3))
        coords[:16] = 1.0  # sit exactly on the max corner
        coords[16:32] = 0.0
        tree = Octree(coords, max_level=4, capacity=32,
                      lo=np.zeros(3), hi=np.ones(3))
        leaves = tree.leaf_of_particles()
        assert leaves.min() >= 0 and leaves.max() < tree.n_nodes
        # every particle's leaf actually contains its key range
        keys = morton_keys(coords, tree.lo, tree.hi, tree.max_level)
        via_keys = leaf_for_keys(tree.nodes, keys[tree.order], tree.max_level)
        assert np.array_equal(leaves, via_keys)

    def test_leaf_of_coords_matches_leaf_of_particles(self):
        rng = np.random.default_rng(3)
        coords = rng.normal(0.0, 1.0, (3000, 3))
        tree = Octree(coords, max_level=5, capacity=16)
        got = tree.leaf_of_coords(coords[tree.order])
        assert np.array_equal(got, tree.leaf_of_particles())

    def test_streamed_partition_with_boundary_particles(self, tmp_path):
        """End to end: a frame whose extremes sit exactly on the data
        bounds partitions identically in-core and streamed."""
        rng = np.random.default_rng(4)
        pts = rng.uniform(-1.0, 1.0, (6000, 6))
        pts[0, :3] = 1.0
        pts[1, :3] = -1.0
        pf = partition(as_dataset(pts), "xyz", max_level=4, capacity=32)
        st = create_store(tmp_path / "st", pts, shard_rows=1024)
        ps = partition_store(st, tmp_path / "out", "xyz", max_level=4, capacity=32)
        assert_frames_identical(ps, pf)
