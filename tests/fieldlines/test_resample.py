"""Line resampling and tessellation."""

import numpy as np
import pytest

from repro.fieldlines.integrate import FieldLine
from repro.fieldlines.resample import resample_line, resample_lines, tessellate_line


def _wavy_line(n=40):
    t = np.linspace(0, 2 * np.pi, n)
    pts = np.column_stack([t, np.sin(t), np.zeros(n)])
    tangents = np.column_stack([np.ones(n), np.cos(t), np.zeros(n)])
    tangents /= np.linalg.norm(tangents, axis=1, keepdims=True)
    return FieldLine(
        points=pts, tangents=tangents, magnitudes=np.linspace(1, 2, n), order=3
    )


class TestResample:
    def test_endpoints_preserved(self):
        line = _wavy_line()
        out = resample_line(line, 0.1)
        assert np.allclose(out.points[0], line.points[0])
        assert np.allclose(out.points[-1], line.points[-1])

    def test_uniform_spacing(self):
        out = resample_line(_wavy_line(), 0.1)
        seg = np.linalg.norm(np.diff(out.points, axis=0), axis=1)
        assert seg.std() / seg.mean() < 0.05

    def test_length_approximately_preserved(self):
        line = _wavy_line()
        out = resample_line(line, 0.05)
        assert out.length == pytest.approx(line.length, rel=0.02)

    def test_finer_spacing_more_points(self):
        line = _wavy_line()
        coarse = resample_line(line, 0.5)
        fine = resample_line(line, 0.05)
        assert fine.n_points > coarse.n_points

    def test_magnitudes_interpolated_in_range(self):
        out = resample_line(_wavy_line(), 0.1)
        assert out.magnitudes.min() >= 1.0 - 1e-9
        assert out.magnitudes.max() <= 2.0 + 1e-9
        assert np.all(np.diff(out.magnitudes) >= -1e-9)  # monotone stays monotone

    def test_tangents_unit(self):
        out = resample_line(_wavy_line(), 0.1)
        assert np.allclose(np.linalg.norm(out.tangents, axis=1), 1.0, atol=1e-9)

    def test_metadata_kept(self):
        out = resample_line(_wavy_line(), 0.1)
        assert out.order == 3
        assert out.meta["resampled_spacing"] == 0.1

    def test_degenerate_inputs(self):
        stub = FieldLine(
            points=np.zeros((2, 3)), tangents=np.zeros((2, 3)), magnitudes=np.zeros(2)
        )
        assert resample_line(stub, 0.1) is stub  # zero length: unchanged
        with pytest.raises(ValueError):
            resample_line(_wavy_line(), 0.0)


class TestTessellate:
    def test_factor_one_identity(self):
        line = _wavy_line()
        assert tessellate_line(line, 1) is line

    def test_factor_multiplies_segments(self):
        line = _wavy_line(10)
        out = tessellate_line(line, 4)
        assert out.n_points >= 4 * (line.n_points - 1) - 2

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            tessellate_line(_wavy_line(), 0)

    def test_strip_budget_scales(self):
        """Finer tessellation costs proportionally more triangles --
        the cost the paper warns the transparency path incurs."""
        from repro.fieldlines.sos import build_strips
        from repro.render.camera import Camera

        cam = Camera(eye=[0, 0, 10.0], target=[3, 0, 0], width=64, height=64)
        line = _wavy_line(20)
        base = build_strips([line], cam, width=0.05)
        fine = build_strips([tessellate_line(line, 3)], cam, width=0.05)
        assert fine.n_triangles > 2.5 * base.n_triangles


class TestResampleLines:
    def test_collection(self):
        lines = [_wavy_line(20), _wavy_line(35)]
        out = resample_lines(lines, 0.2)
        assert len(out) == 2
        assert all(o.n_points >= 2 for o in out)
