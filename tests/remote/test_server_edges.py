"""Server lifecycle and edge cases."""

import numpy as np
import pytest

from repro.core.dataset import as_dataset
from repro.octree.partition import partition
from repro.remote.client import VisualizationClient
from repro.remote.server import VisualizationServer


@pytest.fixture(scope="module")
def one_frame():
    rng = np.random.default_rng(2)
    return [partition(as_dataset(rng.normal(0, 1, (2000, 6))), "xyz", max_level=4, step=0)]


class TestLifecycle:
    def test_stop_idempotent(self, one_frame):
        server = VisualizationServer(one_frame).start()
        server.stop()
        server.stop()  # second stop must not raise

    def test_context_manager_cleans_up(self, one_frame):
        with VisualizationServer(one_frame) as server:
            address = server.address
        # after exit the port no longer accepts connections
        import socket

        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)

    def test_port_zero_assigns_free_port(self, one_frame):
        a = VisualizationServer(one_frame).start()
        b = VisualizationServer(one_frame).start()
        try:
            assert a.address[1] != b.address[1]
        finally:
            a.stop()
            b.stop()

    def test_request_counting(self, one_frame):
        with VisualizationServer(one_frame) as server:
            with VisualizationClient(server.address) as client:
                client.list_frames()
                client.list_frames()
            assert server.stats["requests"] == 2
            assert server.stats["bytes_sent"] > 0

    def test_client_reconnect_after_disconnect(self, one_frame):
        with VisualizationServer(one_frame) as server:
            with VisualizationClient(server.address) as c1:
                c1.list_frames()
            with VisualizationClient(server.address) as c2:
                assert c2.list_frames() == [0]

    def test_empty_store(self):
        with VisualizationServer([]) as server:
            with VisualizationClient(server.address) as client:
                assert client.list_frames() == []
                with pytest.raises(RuntimeError, match="out of range"):
                    client.get_hybrid(0, 1.0)
