"""Streamribbons."""

import numpy as np
import pytest

from repro.fieldlines.integrate import FieldLine
from repro.fieldlines.ribbon import build_ribbons, render_ribbons
from repro.render.camera import Camera


def _straight_line(n=12):
    pts = np.zeros((n, 3))
    pts[:, 0] = np.linspace(-1.0, 1.0, n)
    t = np.zeros((n, 3))
    t[:, 0] = 1.0
    return FieldLine(points=pts, tangents=t, magnitudes=np.ones(n))


def _constant_field(direction):
    d = np.asarray(direction, dtype=np.float64)

    def fn(pts):
        return np.tile(d, (len(np.atleast_2d(pts)), 1))

    return fn


@pytest.fixture
def cam():
    return Camera(eye=[0, 0, 5.0], target=[0, 0, 0], width=64, height=64)


class TestBuildRibbons:
    def test_triangle_budget_matches_strips(self, cam):
        """Ribbons cost the same 2(k-1) triangles per line as strips."""
        line = _straight_line(12)
        ribbons = build_ribbons([line], _constant_field([0, 1, 0]), width=0.1)
        assert ribbons.n_triangles == 2 * (12 - 1)
        assert ribbons.meta["kind"] == "ribbon"

    def test_orientation_follows_secondary_field(self):
        line = _straight_line(8)
        ribbons = build_ribbons([line], _constant_field([0, 1, 0]), width=0.1)
        across = ribbons.vertices[1::2] - ribbons.vertices[0::2]
        # cross-vector along +y, width 0.1
        assert np.allclose(np.abs(across[:, 1]), 0.1)
        assert np.allclose(across[:, [0, 2]], 0.0, atol=1e-12)

    def test_tangential_component_projected_out(self):
        """Secondary field partly along the line: only the
        perpendicular part orients the ribbon."""
        line = _straight_line(8)
        ribbons = build_ribbons(
            [line], _constant_field([0.8, 0.6, 0.0]), width=0.1
        )
        across = ribbons.vertices[1::2] - ribbons.vertices[0::2]
        assert np.allclose(np.abs(across[:, 1]), 0.1, atol=1e-9)
        assert np.allclose(across[:, 0], 0.0, atol=1e-9)

    def test_degenerate_secondary_carries_forward(self):
        """Where the secondary field aligns with the tangent, the last
        good orientation persists (no NaNs, no zero-width quads)."""
        line = _straight_line(8)

        def fn(pts):
            pts = np.atleast_2d(pts)
            out = np.tile([0.0, 1.0, 0.0], (len(pts), 1))
            out[len(pts) // 2 :] = [1.0, 0.0, 0.0]  # parallel to tangent
            return out

        ribbons = build_ribbons([line], fn, width=0.1)
        across = np.linalg.norm(
            ribbons.vertices[1::2] - ribbons.vertices[0::2], axis=1
        )
        assert np.allclose(across, 0.1)
        assert np.isfinite(ribbons.vertices).all()

    def test_empty(self, cam):
        ribbons = build_ribbons([], _constant_field([0, 1, 0]))
        assert ribbons.n_triangles == 0


class TestRenderRibbons:
    def test_renders_pixels(self, cam):
        line = _straight_line(16)
        ribbons = build_ribbons([line], _constant_field([0, 1, 0]), width=0.25)
        fb = render_ribbons(cam, ribbons)
        assert (fb.to_rgb8().sum(axis=2) > 0).sum() > 50

    def test_two_sided_lighting(self, cam):
        """A ribbon tilted away from the camera still renders lit
        (back face flipped), not black."""
        line = _straight_line(16)
        ribbons = build_ribbons([line], _constant_field([0, 0.2, -1.0]), width=0.3)
        img = render_ribbons(cam, ribbons).to_rgb8()
        lit = img[img.sum(axis=2) > 0]
        assert lit.mean() > 15  # lit (flipped normal), not black

    def test_twist_shades_nonuniformly(self, cam):
        """A twisting secondary field produces varying shading along
        the ribbon -- the visual cue ribbons exist for."""
        line = _straight_line(40)

        def twisting(pts):
            pts = np.atleast_2d(pts)
            phase = pts[:, 0] * 3.0
            return np.column_stack(
                [np.zeros(len(pts)), np.cos(phase), np.sin(phase)]
            )

        ribbons = build_ribbons([line], twisting, width=0.25)
        img = render_ribbons(cam, ribbons).to_rgb8().astype(float)
        row_means = []
        lit_cols = np.flatnonzero((img.sum(axis=2) > 0).any(axis=0))
        for c in lit_cols[:: max(len(lit_cols) // 10, 1)]:
            col = img[:, c].sum(axis=1)
            vals = col[col > 0]
            if len(vals):
                row_means.append(vals.mean())
        assert np.std(row_means) > 5.0  # banding along the ribbon

    def test_empty_noop(self, cam):
        fb = render_ribbons(cam, build_ribbons([], _constant_field([0, 1, 0])))
        assert fb.to_rgb8().sum() == 0
