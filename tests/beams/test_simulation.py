"""The beam simulation driver and its physics signatures."""

import numpy as np
import pytest

from repro.beams.diagnostics import halo_parameter, rms_size
from repro.beams.simulation import BeamConfig, BeamSimulation
from repro.core.dataset import as_dataset


def _cfg(**kw):
    base = dict(n_particles=5_000, n_cells=4, seed=11, sc_grid=(16, 16, 16))
    base.update(kw)
    return BeamConfig(**base).resolved()


class TestConstruction:
    def test_reproducible(self):
        a = BeamSimulation(_cfg())
        b = BeamSimulation(_cfg())
        assert np.array_equal(a.particles, b.particles)

    def test_unstable_lattice_rejected(self):
        # the legacy implicit path keeps its stability guard (and its
        # one-release deprecation warning); explicit lattices expose
        # LatticeSpec.is_stable() instead of a constructor check
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unstable"):
                BeamSimulation(BeamConfig(n_particles=5_000, quad_k=200.0))

    def test_n_steps_total(self):
        sim = BeamSimulation(_cfg(n_cells=4))
        assert sim.n_steps_total == 4 * 5  # five elements per FODO cell


class TestStepping:
    def test_step_advances_counters(self):
        sim = BeamSimulation(_cfg(space_charge=False))
        sim.step()
        assert sim.step_index == 1

    def test_run_to_end_then_stops(self):
        sim = BeamSimulation(_cfg(n_cells=2, space_charge=False))
        sim.run()
        with pytest.raises(StopIteration):
            sim.step()

    def test_partial_runs_compose(self):
        a = BeamSimulation(_cfg(space_charge=False))
        a.run(6)
        a.run(4)
        b = BeamSimulation(_cfg(space_charge=False))
        b.run(10)
        assert np.allclose(a.particles, b.particles)

    def test_on_frame_callback_cadence(self):
        sim = BeamSimulation(_cfg(n_cells=2, space_charge=False))
        seen = []
        sim.run(on_frame=lambda s, p: seen.append(s), frame_every=5)
        assert seen == [0, 5, 10]

    def test_frames_generator_matches_run(self):
        a = BeamSimulation(_cfg(n_cells=2, space_charge=False))
        frames = [(s, p.copy()) for s, p in a.frames(frame_every=5)]
        b = BeamSimulation(_cfg(n_cells=2, space_charge=False))
        b.run(frames[-1][0])
        assert np.allclose(frames[-1][1], b.particles)


class TestPhysics:
    def test_beam_stays_bounded(self):
        """A stable channel keeps rms size within a sane envelope."""
        sim = BeamSimulation(_cfg(n_cells=6))
        r0 = rms_size(sim.particles, 0)
        sim.run()
        assert rms_size(sim.particles, 0) < 5.0 * r0

    def test_mismatch_drives_halo(self):
        """The core physics the visualization targets: a mismatched
        beam with space charge grows a halo (kurtosis increase over
        the initial distribution)."""
        sim = BeamSimulation(_cfg(mismatch=1.6, n_cells=6))
        h0 = halo_parameter(sim.particles)
        sim.run()
        assert halo_parameter(sim.particles) > h0 + 0.1

    def test_space_charge_changes_dynamics(self):
        on = BeamSimulation(_cfg())
        off = BeamSimulation(_cfg(space_charge=False))
        on.run(10)
        off.run(10)
        assert not np.allclose(on.particles, off.particles)

    def test_density_dynamic_range(self):
        """After evolution the density spans orders of magnitude --
        the property that motivates hybrid rendering (section 2.2)."""
        from repro.octree.partition import partition

        sim = BeamSimulation(_cfg(n_particles=20_000, n_cells=6))
        sim.run()
        pf = partition(as_dataset(sim.particles), "xyz", max_level=6, capacity=32)
        dens = pf.nodes["density"]
        assert dens.max() / dens[dens > 0].min() > 100.0
