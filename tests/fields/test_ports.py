"""Power flow / transmission measurement."""

import numpy as np
import pytest

from repro.fields.geometry import make_multicell_structure
from repro.fields.ports import PowerMonitor, transmission
from repro.fields.solver import TimeDomainSolver


@pytest.fixture(scope="module")
def driven_run():
    """A driven 3-cell run with monitors after cell 1 and before the
    last iris."""
    s = make_multicell_structure(3, n_xy=5, n_z_per_unit=5)
    solver = TimeDomainSolver(s, cells_per_unit=7.0)
    _, z_up = s.profile.cell_z_range(0)
    z_dn, _ = s.profile.cell_z_range(2)
    up = PowerMonitor(solver, z_up + 0.05)
    dn = PowerMonitor(solver, z_dn - 0.05)

    def tick(_):
        up.record()
        dn.record()

    solver.run(solver.steps_for(3.0 * s.length), on_step=tick)
    return s, solver, up, dn


class TestPowerMonitor:
    def test_sample_points_inside_structure(self, driven_run):
        s, solver, up, dn = driven_run
        assert len(up.points) > 0
        assert s.inside(up.points).all()

    def test_flux_recorded_per_step(self, driven_run):
        s, solver, up, dn = driven_run
        assert len(up.flux_history) == solver.step_count
        assert np.isfinite(up.flux_history).all()

    def test_energy_flows_through_structure(self, driven_run):
        _, _, up, dn = driven_run
        assert up.energy_through() > 0
        assert dn.energy_through() > 0

    def test_transmission_between_zero_and_reasonable(self, driven_run):
        """Irises partially reflect: downstream energy is a nonzero
        fraction of upstream, not more than ~1."""
        _, _, up, dn = driven_run
        t = transmission(up, dn)
        assert 0.0 < t < 1.5

    def test_attenuation_through_irises(self, driven_run):
        """Each iris stores/reflects: peak flux decays downstream
        during the fill transient."""
        _, _, up, dn = driven_run
        assert dn.peak_flux() < up.peak_flux()

    def test_empty_monitor(self):
        s = make_multicell_structure(2, n_xy=4, n_z_per_unit=4)
        solver = TimeDomainSolver(s, cells_per_unit=6.0)
        m = PowerMonitor(solver, s.length / 2)
        assert m.energy_through() == 0.0
        assert m.peak_flux() == 0.0
        assert transmission(m, m) == 0.0

    def test_on_step_adapter(self):
        s = make_multicell_structure(2, n_xy=4, n_z_per_unit=4)
        solver = TimeDomainSolver(s, cells_per_unit=6.0)
        m = PowerMonitor(solver, s.length / 2)
        solver.run(5, on_step=m.on_step)
        assert len(m.flux_history) == 5
