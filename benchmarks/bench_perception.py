"""Section 3.3 -- the perception toolkit and its costs.

Paper, section 3.3: enhanced lighting "carries no significant
performance penalty"; halos clarify overlap; self-orienting strips
beat scaled-up haloed lines on cross-section smoothness; transparency
(and cutaway) reveal interior structure.

Measured: render cost with each cue toggled, the cross-section
smoothness comparison, and the interior-visibility gain from
region-emphasis transparency.
"""

import numpy as np
import pytest

from common import record

from repro.fieldlines.halo import (
    haloed_line_cross_section,
    smoothness,
    strip_cross_section,
)
from repro.fieldlines.sos import build_strips, render_strips
from repro.fieldlines.transparency import render_with_emphasis
from repro.render.camera import Camera

IMAGE = 128
WIDTH = 0.03


@pytest.fixture(scope="module")
def cam(structure3):
    return Camera.fit_bounds(*structure3.bounds(), width=IMAGE, height=IMAGE)


@pytest.fixture(scope="module")
def strips(cam, seeded_lines):
    return build_strips(seeded_lines.lines, cam, width=WIDTH)


def test_lighting_flat(benchmark, cam, strips):
    benchmark(lambda: render_strips(cam, strips, shading="flat", halo_core=None))


def test_lighting_bump(benchmark, cam, strips):
    benchmark(lambda: render_strips(cam, strips, shading="bump", halo_core=None))


def test_halo_on(benchmark, cam, strips):
    benchmark(lambda: render_strips(cam, strips, halo_core=0.7))


def test_transparency(benchmark, cam, strips):
    benchmark(lambda: render_strips(cam, strips, base_alpha=0.3))


def test_perception_report(benchmark, cam, strips, seeded_lines, structure3):
    def measure():
        import time

        costs = {}
        for name, kw in [
            ("flat", dict(shading="flat", halo_core=None)),
            ("bump-lit", dict(shading="bump", halo_core=None)),
            ("bump+halo", dict(shading="bump", halo_core=0.7)),
            ("transparent", dict(base_alpha=0.3)),
        ]:
            t0 = time.perf_counter()
            render_strips(cam, strips, **kw)
            costs[name] = time.perf_counter() - t0
        s_strip = smoothness(strip_cross_section(64))
        s_line = smoothness(haloed_line_cross_section(64))

        center = np.array([0.0, 0.0, structure3.length / 2])
        fb = render_with_emphasis(
            cam, seeded_lines.lines, center, radius=0.5, width=WIDTH
        )
        roi_alpha = float(fb.rgba[..., 3].max())
        return costs, s_strip, s_line, roi_alpha

    costs, s_strip, s_line, roi_alpha = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    lighting_penalty = costs["bump-lit"] / max(costs["flat"], 1e-12)
    lines_rep = [
        "paper: enhanced lighting ~free; strips smoother than scaled haloed",
        "       lines; transparency keeps context while showing the ROI",
        "measured render costs: "
        + ", ".join(f"{k} {v * 1e3:.1f} ms" for k, v in costs.items()),
        f"  bump-lighting penalty over flat: x{lighting_penalty:.2f} "
        "(paper: 'no significant performance penalty')",
        f"  cross-section max jump: strip {s_strip:.3f} vs haloed line {s_line:.3f}",
        f"  region-emphasis: ROI rendered at alpha {roi_alpha:.2f} over faint context",
    ]
    record("PERCEPTION", lines_rep)
    assert lighting_penalty < 2.0
    assert s_strip < s_line
    assert roi_alpha > 0.9
