"""Closed-loop feedback controllers over live scenarios.

The control-room half of the digital twin: a controller samples beam
diagnostics (:mod:`repro.beams.diagnostics`) every ``every`` steps and
actuates a named lattice knob on the running
:class:`~repro.beams.scenario.spec.Scenario` -- the same
observe/decide/actuate loop an orbit- or envelope-feedback system
closes around a real machine.

Two concrete loops:

:class:`EnvelopeController`
    integral control of an rms beam size onto a target by moving a
    quadrupole (or solenoid) strength -- the matching loop.  With
    space charge, envelope-mismatch oscillations decohere over a few
    cells, so the slow integral term converges onto the matched size.

:class:`OrbitController`
    steering control of the beam centroid onto the axis through a
    corrector kick.  The centroid obeys the bare linear lattice, so a
    position-only kick merely re-phases the oscillation; damping
    requires the momentum-proportional term (``gain_p``), giving the
    discrete PD loop of a real orbit-feedback system.

Both detect their own pathologies: a *deadband* (hands-off region)
with ``settle`` consecutive in-band samples declaring convergence, and
an instability trip (error blowing past ``blowup`` times its initial
value, or rising monotonically ``rising_limit`` samples in a row) that
latches the controller off -- visible in a trace as the
``feedback_unstable`` counter.  Controllers are observable end to end
through :mod:`repro.core.trace`: ``feedback_samples``,
``feedback_actuations``, ``feedback_converged``, ``feedback_unstable``.
"""

from __future__ import annotations

import numpy as np

from repro.beams.diagnostics import centroid, rms_size
from repro.beams.distributions import PX, PY, X, Y
from repro.core.errors import FormatError
from repro.core.trace import count

__all__ = [
    "FeedbackController",
    "EnvelopeController",
    "OrbitController",
    "controllers_from_spec",
]

# observable name -> particles -> measured scalar
_OBSERVABLES = {
    "sigma_x": lambda p: rms_size(p, X),
    "sigma_y": lambda p: rms_size(p, Y),
    "sigma_xy": lambda p: 0.5 * (rms_size(p, X) + rms_size(p, Y)),
}

_PLANES = {"x": (X, PX), "y": (Y, PY)}


class FeedbackController:
    """Base observe/decide/actuate loop on one named knob.

    Subclasses implement :meth:`measure` (signed scalar error from the
    particle array) and :meth:`actuation` (knob increment from that
    error).  The base class owns the cadence (``every``), the deadband
    / ``settle`` convergence logic, actuator clamping, instability
    detection, and the trace counters.

    Attributes
    ----------
    converged : currently inside the deadband for >= ``settle``
        consecutive samples
    converged_step : first step at which convergence was declared
        (``None`` until then)
    unstable : the instability trip latched; the controller has
        stopped actuating
    errors : |error| per sample, for post-run analysis
    """

    def __init__(
        self,
        knob: str,
        gain: float = 0.1,
        deadband: float = 0.01,
        every: int = 5,
        phase: int = 0,
        settle: int = 3,
        limits: tuple | None = None,
        blowup: float = 5.0,
        rising_limit: int = 8,
        warmup: int | None = None,
    ):
        if gain < 0.0:
            raise ValueError("gain must be >= 0")
        if deadband < 0.0:
            raise ValueError("deadband must be >= 0")
        self.knob = str(knob)
        self.gain = float(gain)
        self.deadband = float(deadband)
        self.every = max(1, int(every))
        self.phase = int(phase) % self.every
        self.settle = max(1, int(settle))
        self.limits = None if limits is None else (float(limits[0]), float(limits[1]))
        self.blowup = float(blowup)
        self.rising_limit = int(rising_limit)
        # the instability trips arm only after this many samples: the
        # first observations of an oscillating beam alias the swing, so
        # the blowup reference is their *maximum*, not the first value
        self.warmup = max(2, int(warmup) if warmup is not None else self.settle)
        self.converged_step = None
        self.unstable = False
        self.errors: list = []
        self.actuations = 0
        self._in_band = 0
        self._rising = 0

    # ------------------------------------------------------------------
    # subclass surface
    def measure(self, particles: np.ndarray) -> float:
        """Signed scalar error (0 = on target) from the live beam."""
        raise NotImplementedError

    def actuation(self, error: float, particles: np.ndarray) -> float:
        """Knob increment responding to ``error``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        """Convergence was declared (``settle`` consecutive in-band
        samples at some point) and the loop has not gone unstable."""
        return self.converged_step is not None and not self.unstable

    # set by subclasses: actuation() returns the knob's new absolute
    # value instead of an increment
    absolute = False

    def update(self, scenario, step_index: int, particles: np.ndarray) -> None:
        """One control-loop closure; called by ``Scenario.step()``."""
        if step_index % self.every != self.phase or self.unstable:
            return
        error = float(self.measure(particles))
        magnitude = abs(error)
        self.errors.append(magnitude)
        count("feedback_samples")
        if magnitude <= self.deadband:
            self._in_band += 1
            self._rising = 0
            if self._in_band == self.settle and self.converged_step is None:
                self.converged_step = step_index
                count("feedback_converged")
            if not self.absolute:
                # integral loops go hands-off inside the deadband; an
                # absolute loop keeps tracking (its actuator must follow
                # the observable or a stale setting re-excites the error)
                return
        else:
            self._in_band = 0
            # instability trip: error far past its warmup-window
            # reference, or rising monotonically sample after sample
            if len(self.errors) >= 2 and magnitude > self.errors[-2] * (1.0 + 1e-9):
                self._rising += 1
            else:
                self._rising = 0
            if len(self.errors) > self.warmup:
                ref = max(max(self.errors[: self.warmup]), self.deadband, 1e-12)
                if magnitude > self.blowup * ref or self._rising >= self.rising_limit:
                    self.unstable = True
                    count("feedback_unstable")
                    return
        out = float(self.actuation(error, particles))
        value = out if self.absolute else scenario.get_strength(self.knob) + out
        if not self.absolute and out == 0.0:
            return
        if self.limits is not None:
            value = min(max(value, self.limits[0]), self.limits[1])
        scenario.set_strength(self.knob, value)
        self.actuations += 1
        count("feedback_actuations")

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = (
            "unstable"
            if self.unstable
            else ("converged" if self.converged else "seeking")
        )
        return f"{type(self).__name__}(knob={self.knob!r}, {state})"


class EnvelopeController(FeedbackController):
    """Integral matching loop: drive an rms size onto a target.

    ``observable`` is one of ``sigma_x`` / ``sigma_y`` / ``sigma_xy``;
    the increment is ``direction * gain * (smoothed - target)``.  For a
    focusing quad (``qf``-style, k > 0 focuses the measured plane) a
    too-large beam needs *more* strength, so ``direction=+1``; for a
    knob whose spec strength is negative in the measured plane's
    focusing sense (the ``qd`` quad observed in y) use
    ``direction=-1``.

    A mismatched envelope *oscillates* at twice the betatron frequency,
    and per-cell sampling aliases that swing; the controller therefore
    regulates the exponential moving average of the observable
    (``smooth`` is the EMA weight of each new sample; 1 disables
    smoothing), i.e. the DC level the quad strength actually moves.
    """

    def __init__(
        self,
        knob: str,
        target: float,
        observable: str = "sigma_x",
        direction: float = 1.0,
        smooth: float = 0.2,
        **kwargs,
    ):
        if observable not in _OBSERVABLES:
            raise ValueError(
                f"unknown observable {observable!r}; "
                f"available: {', '.join(sorted(_OBSERVABLES))}"
            )
        if not 0.0 < smooth <= 1.0:
            raise ValueError("smooth must be in (0, 1]")
        super().__init__(knob, **kwargs)
        self.target = float(target)
        self.observable = str(observable)
        self.direction = float(direction)
        self.smooth = float(smooth)
        self._ema = None

    def measure(self, particles: np.ndarray) -> float:
        raw = _OBSERVABLES[self.observable](particles)
        if self._ema is None:
            self._ema = raw
        else:
            self._ema += self.smooth * (raw - self._ema)
        return self._ema - self.target

    def actuation(self, error: float, particles: np.ndarray) -> float:
        return self.direction * self.gain * error


class OrbitController(FeedbackController):
    """Steering loop: drive the beam centroid onto the axis.

    Observes the centroid of one transverse plane and *sets* the
    corrector kick to ``-(gain * <q> + gain_p * <p>)`` -- fast orbit
    feedback.  The momentum term is what damps: the centroid follows
    the bare symplectic lattice, so a position-only kick merely
    re-phases the oscillation, while ``gain_p = 1`` removes the whole
    centroid momentum at the corrector (deadbeat in p; the lattice
    rotation then walks the position error down each period).

    Sampling phase matters: set ``every`` to the lattice period (in
    steps) and ``phase`` so the sample lands immediately *before* the
    corrector -- sampling after it closes the loop around a full-period
    delay, which is unstable at any useful gain.  Deadband and
    convergence act on the position error.
    """

    absolute = True

    def __init__(
        self,
        knob: str,
        plane: str = "x",
        gain: float = 0.0,
        gain_p: float = 1.0,
        **kwargs,
    ):
        if plane not in _PLANES:
            raise ValueError(f"unknown plane {plane!r}; use 'x' or 'y'")
        super().__init__(knob, gain=gain, **kwargs)
        self.plane = str(plane)
        self.gain_p = float(gain_p)

    def measure(self, particles: np.ndarray) -> float:
        q, _ = _PLANES[self.plane]
        return float(particles[:, q].mean())

    def actuation(self, error: float, particles: np.ndarray) -> float:
        _, p = _PLANES[self.plane]
        return -(self.gain * error + self.gain_p * float(particles[:, p].mean()))


_CONTROLLER_TYPES = {"envelope": EnvelopeController, "orbit": OrbitController}


def controllers_from_spec(spec) -> list:
    """Instantiate a spec's declarative controllers.

    Each entry of ``ScenarioSpec.controllers`` is a dict with a
    ``type`` key (``"envelope"`` or ``"orbit"``) plus the matching
    constructor's keyword arguments.  Raises
    :class:`~repro.core.errors.FormatError` on an unknown type or bad
    arguments -- controller dicts are spec *data*, so damage is a
    format error (CLI exit 3), not a programming error.
    """
    controllers = []
    for entry in spec.controllers:
        entry = dict(entry)
        kind = entry.pop("type", None)
        cls = _CONTROLLER_TYPES.get(kind)
        if cls is None:
            raise FormatError(
                f"unknown controller type {kind!r}; "
                f"available: {', '.join(sorted(_CONTROLLER_TYPES))}"
            )
        if "limits" in entry and entry["limits"] is not None:
            entry["limits"] = tuple(entry["limits"])
        try:
            controllers.append(cls(**entry))
        except (TypeError, ValueError) as exc:
            raise FormatError(f"bad {kind} controller spec {entry!r}: {exc}") from exc
    return controllers
