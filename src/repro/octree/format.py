"""The two-part on-disk format for partitioned frames.

"This octree is written out to disk in two parts: one part contains
all the particles of the simulation, the other contains the octree
nodes themselves."  We keep that split literally: a ``.nodes`` file
and a ``.particles`` file sharing a stem.  The node file carries the
build metadata (plot type, bounds, levels); the particle file is the
density-sorted raw particle payload that extraction slices a prefix
from.

Both parts are written atomically (temp file + ``os.replace``, see
:mod:`repro.core.atomic`): a process killed mid-save never leaves a
torn file.  Loads validate magic, version, and payload sizes and raise
:class:`repro.core.errors.FormatError` on damage instead of numpy
decode noise.

Node file layout (little-endian):

    bytes 0..7   magic b"RPRNODES"
    u16          format version (2)
    header       struct: n_nodes u64, n_particles u64, max_level u32,
                 capacity u32, step u64, lo 3xf8, hi 3xf8,
                 plot type 16 bytes NUL padded
    payload      NODE_DTYPE records

Particle file layout:

    bytes 0..7   magic b"RPRPARTS"
    u16          format version (2)
    u64          n_particles
    payload      (N, 6) float64
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.core.atomic import atomic_write_bytes
from repro.core.errors import FormatError
from repro.octree.octree import NODE_DTYPE
from repro.octree.partition import PartitionedFrame

__all__ = ["save_partitioned", "load_partitioned", "load_particle_prefix",
           "partition_paths", "write_nodes_file", "read_nodes_file",
           "FORMAT_VERSION"]

NODES_MAGIC = b"RPRNODES"
PARTS_MAGIC = b"RPRPARTS"
FORMAT_VERSION = 2
_NODES_HEADER = struct.Struct("<8sHQQIIQ3d3d16s")
_PARTS_HEADER = struct.Struct("<8sHQ")
_PARTICLE_BYTES = 6 * 8


def partition_paths(stem) -> tuple[Path, Path]:
    """(nodes_path, particles_path) for a partition stem."""
    stem = Path(stem)
    return stem.with_suffix(".nodes"), stem.with_suffix(".particles")


def write_nodes_file(
    path,
    nodes: np.ndarray,
    n_particles: int,
    max_level: int,
    capacity: int,
    step: int,
    lo,
    hi,
    plot_type: str,
) -> int:
    """Atomically write one RPRNODES file; returns bytes written.

    The node-file half of :func:`save_partitioned`, factored out so the
    out-of-core partition (:mod:`repro.octree.stream_partition`) can
    commit its node table in the same format without materializing a
    :class:`PartitionedFrame`.
    """
    name = plot_type.encode("ascii")[:16].ljust(16, b"\0")
    header = _NODES_HEADER.pack(
        NODES_MAGIC,
        FORMAT_VERSION,
        len(nodes),
        int(n_particles),
        int(max_level),
        int(capacity),
        int(step),
        *(float(v) for v in lo),
        *(float(v) for v in hi),
        name,
    )
    nodes = np.ascontiguousarray(nodes, dtype=NODE_DTYPE)
    return atomic_write_bytes(path, header + nodes.tobytes())


def read_nodes_file(path):
    """Read one RPRNODES file back.

    Returns ``(nodes, n_particles, max_level, capacity, step, lo, hi,
    plot_type)``; raises :class:`FormatError` on damage.
    """
    return _read_nodes(path)


def save_partitioned(frame: PartitionedFrame, stem) -> int:
    """Write both parts atomically; returns total bytes written."""
    nodes_path, parts_path = partition_paths(stem)
    nodes_bytes = write_nodes_file(
        nodes_path,
        frame.nodes,
        frame.n_particles,
        frame.max_level,
        frame.capacity,
        frame.step,
        frame.lo,
        frame.hi,
        frame.plot_type,
    )
    particles = np.ascontiguousarray(frame.particles, dtype="<f8")
    parts_bytes = atomic_write_bytes(
        parts_path,
        _PARTS_HEADER.pack(PARTS_MAGIC, FORMAT_VERSION, frame.n_particles)
        + particles.tobytes(),
    )
    return nodes_bytes + parts_bytes


def _read_nodes(nodes_path):
    with open(nodes_path, "rb") as f:
        raw = f.read()
    if len(raw) < _NODES_HEADER.size:
        raise FormatError(f"{nodes_path}: truncated node-file header")
    fields = _NODES_HEADER.unpack_from(raw, 0)
    if fields[0] != NODES_MAGIC:
        raise FormatError(f"{nodes_path}: not a partition nodes file")
    if fields[1] != FORMAT_VERSION:
        raise FormatError(
            f"{nodes_path}: unsupported format version {fields[1]} "
            f"(expected {FORMAT_VERSION})"
        )
    n_nodes, n_particles, max_level, capacity, step = fields[2:7]
    expected = _NODES_HEADER.size + n_nodes * NODE_DTYPE.itemsize
    if len(raw) < expected:
        raise FormatError(
            f"{nodes_path}: truncated payload ({len(raw)} bytes, "
            f"{expected} expected for {n_nodes} nodes)"
        )
    lo = np.array(fields[7:10])
    hi = np.array(fields[10:13])
    plot_type = fields[13].rstrip(b"\0").decode("ascii")
    nodes = np.frombuffer(
        raw, dtype=NODE_DTYPE, count=n_nodes, offset=_NODES_HEADER.size
    ).copy()
    return nodes, n_particles, max_level, capacity, step, lo, hi, plot_type


def _read_parts_header(f, parts_path):
    head = f.read(_PARTS_HEADER.size)
    if len(head) < _PARTS_HEADER.size:
        raise FormatError(f"{parts_path}: truncated particle-file header")
    magic, version, n = _PARTS_HEADER.unpack(head)
    if magic != PARTS_MAGIC:
        raise FormatError(f"{parts_path}: not a partition particles file")
    if version != FORMAT_VERSION:
        raise FormatError(
            f"{parts_path}: unsupported format version {version} "
            f"(expected {FORMAT_VERSION})"
        )
    return n


def load_partitioned(stem) -> PartitionedFrame:
    """Read both parts back into a PartitionedFrame."""
    nodes_path, parts_path = partition_paths(stem)
    nodes, n_particles, max_level, capacity, step, lo, hi, plot_type = _read_nodes(
        nodes_path
    )
    with open(parts_path, "rb") as f:
        n = _read_parts_header(f, parts_path)
        if n != n_particles:
            raise FormatError(
                f"{parts_path}: node/particle file disagree on particle count "
                f"({n_particles} vs {n})"
            )
        payload = f.read(n * _PARTICLE_BYTES)
    if len(payload) < n * _PARTICLE_BYTES:
        raise FormatError(
            f"{parts_path}: truncated payload ({len(payload)} bytes for "
            f"{n} particles)"
        )
    particles = np.frombuffer(payload, dtype="<f8").reshape(n, 6).copy()
    from repro.octree.octree import plot_columns

    return PartitionedFrame(
        plot_type=plot_type,
        columns=plot_columns(plot_type),
        particles=particles,
        nodes=nodes,
        lo=lo,
        hi=hi,
        max_level=int(max_level),
        capacity=int(capacity),
        step=int(step),
    )


def load_particle_prefix(stem, n_particles: int) -> np.ndarray:
    """Read only the first ``n_particles`` particles of the particle
    file -- extraction's "discarded particles are never read from
    disk" fast path."""
    _, parts_path = partition_paths(stem)
    with open(parts_path, "rb") as f:
        n = _read_parts_header(f, parts_path)
        take = min(int(n_particles), n)
        payload = f.read(take * _PARTICLE_BYTES)
    if len(payload) < take * _PARTICLE_BYTES:
        raise FormatError(
            f"{parts_path}: truncated payload ({len(payload)} bytes for a "
            f"{take}-particle prefix)"
        )
    return np.frombuffer(payload, dtype="<f8").reshape(take, 6).copy()
