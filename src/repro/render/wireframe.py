"""Wireframe overlays: boxes, polylines, structure outlines.

The paper's figures anchor the field lines in context: Figure 9 shows
the accelerator structure's mesh surface around the lines ("the front
half of the mesh has been removed to permit viewing inside").  This
module draws that context -- constant-color polylines rasterized at
pixel rate with depth, so geometry occludes and is occluded correctly
when composited with strips and volumes.
"""

from __future__ import annotations

import numpy as np

from repro.render.camera import Camera
from repro.render.framebuffer import Framebuffer, composite_fragments

__all__ = ["draw_polyline", "draw_box", "draw_structure_outline"]


def _polyline_fragments(camera: Camera, points: np.ndarray):
    """Sample a polyline at ~pixel rate; returns (pix, depth)."""
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    xy, depth, visible = camera.project(pts)
    pix_all, dep_all = [], []
    w, h = camera.width, camera.height
    for s in range(len(pts) - 1):
        if not (visible[s] and visible[s + 1]):
            continue
        length = np.linalg.norm(xy[s + 1] - xy[s])
        n = int(np.clip(np.ceil(length) + 1, 2, 512))
        ts = np.linspace(0.0, 1.0, n)
        sxy = xy[s] + (xy[s + 1] - xy[s]) * ts[:, None]
        sd = depth[s] + (depth[s + 1] - depth[s]) * ts
        ix = np.floor(sxy[:, 0]).astype(np.int64)
        iy = np.floor(sxy[:, 1]).astype(np.int64)
        ok = (ix >= 0) & (ix < w) & (iy >= 0) & (iy < h)
        pix_all.append(iy[ok] * w + ix[ok])
        dep_all.append(sd[ok])
    if not pix_all:
        return np.empty(0, dtype=np.int64), np.empty(0)
    return np.concatenate(pix_all), np.concatenate(dep_all)


def draw_polyline(
    camera: Camera,
    fb: Framebuffer,
    points: np.ndarray,
    color=(0.45, 0.45, 0.5),
    alpha: float = 1.0,
) -> Framebuffer:
    """Draw one polyline into the framebuffer (depth-composited)."""
    pix, dep = _polyline_fragments(camera, points)
    if len(pix) == 0:
        return fb
    rgba = np.empty((len(pix), 4))
    rgba[:, :3] = np.asarray(color, dtype=np.float64)
    rgba[:, 3] = alpha
    layer, depth = composite_fragments(pix, dep, rgba, fb.n_pixels)
    fb.layer_over(
        layer.reshape(fb.height, fb.width, 4), depth.reshape(fb.height, fb.width)
    )
    return fb


def draw_box(
    camera: Camera,
    fb: Framebuffer,
    lo,
    hi,
    color=(0.35, 0.35, 0.4),
    alpha: float = 1.0,
) -> Framebuffer:
    """Draw the 12 edges of an axis-aligned box."""
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    c = [
        np.array([x, y, z])
        for x in (lo[0], hi[0])
        for y in (lo[1], hi[1])
        for z in (lo[2], hi[2])
    ]
    edges = [
        (0, 1), (2, 3), (4, 5), (6, 7),   # z edges
        (0, 2), (1, 3), (4, 6), (5, 7),   # y edges
        (0, 4), (1, 5), (2, 6), (3, 7),   # x edges
    ]
    for a, b in edges:
        draw_polyline(camera, fb, np.vstack([c[a], c[b]]), color=color, alpha=alpha)
    return fb


def draw_structure_outline(
    camera: Camera,
    fb: Framebuffer,
    structure,
    n_rings: int = 24,
    n_theta: int = 48,
    n_axial: int = 8,
    color=(0.4, 0.42, 0.48),
    alpha: float = 0.5,
    half: str | None = None,
) -> Framebuffer:
    """Sketch an accelerator structure's wall as rings + axial lines.

    ``half='back'`` draws only y <= 0 (the look of the paper's
    Figure 9 with the front half of the mesh removed); 'front' the
    opposite; None draws everything.
    """
    if half not in (None, "front", "back"):
        raise ValueError("half must be None, 'front', or 'back'")
    if half == "back":
        thetas = np.linspace(np.pi, 2 * np.pi, n_theta)
    elif half == "front":
        thetas = np.linspace(0.0, np.pi, n_theta)
    else:
        thetas = np.linspace(0.0, 2 * np.pi, n_theta + 1)
    zs = np.linspace(0.0, structure.length, n_rings)
    # rings
    for z in zs:
        r = structure.wall_radius(thetas, np.full_like(thetas, z))
        ring = np.column_stack([r * np.cos(thetas), r * np.sin(thetas), np.full_like(thetas, z)])
        draw_polyline(camera, fb, ring, color=color, alpha=alpha)
    # axial lines
    z_fine = np.linspace(0.0, structure.length, 96)
    for theta in np.linspace(thetas[0], thetas[-1], n_axial):
        r = structure.wall_radius(np.full_like(z_fine, theta), z_fine)
        line = np.column_stack(
            [r * np.cos(theta), r * np.sin(theta), z_fine]
        )
        draw_polyline(camera, fb, line, color=color, alpha=alpha)
    return fb
