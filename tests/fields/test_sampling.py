"""Field samplers used by the streamline tracer."""

import numpy as np
import pytest

from repro.fields.geometry import make_pillbox
from repro.fields.modes import pillbox_tm010
from repro.fields.sampling import AnalyticSampler, YeeSampler, sample_staggered
from repro.fields.solver import TimeDomainSolver


class TestSampleStaggered:
    def test_exact_on_samples(self):
        arr = np.arange(24.0).reshape(2, 3, 4)
        origin = np.array([1.0, 2.0, 3.0])
        cell = np.array([0.5, 0.5, 0.5])
        # sample point exactly at index (1, 2, 3)
        p = origin + cell * np.array([1, 2, 3])
        out = sample_staggered(arr, origin, cell, p[None])
        assert out[0] == pytest.approx(arr[1, 2, 3])

    def test_linear_exactness(self, rng):
        xs = np.arange(5.0)
        gx, gy, gz = np.meshgrid(xs, xs, xs, indexing="ij")
        arr = 3.0 * gx + 2.0 * gy - gz
        origin = np.zeros(3)
        cell = np.ones(3)
        pts = rng.uniform(0.1, 3.9, (50, 3))
        expected = 3.0 * pts[:, 0] + 2.0 * pts[:, 1] - pts[:, 2]
        assert np.allclose(sample_staggered(arr, origin, cell, pts), expected)

    def test_outside_zero(self):
        arr = np.ones((3, 3, 3))
        out = sample_staggered(arr, np.zeros(3), np.ones(3), np.array([[5.0, 0, 0]]))
        assert out[0] == 0.0


class TestYeeSampler:
    @pytest.fixture(scope="class")
    def solver(self):
        s = make_pillbox(radius=1.0, length=1.5, n_xy=4, n_z_per_unit=4)
        solver = TimeDomainSolver(s, cells_per_unit=6.0, drive_amplitude=0.0)
        solver.ez[:] = solver._mask["ez"] * 1.0  # uniform Ez inside
        return solver

    def test_snapshot_frozen(self, solver):
        samp = YeeSampler(solver, "E")
        p = np.array([[0.0, 0.0, 0.75]])
        before = samp(p).copy()
        solver.run(5)  # solver moves on
        after = samp(p)
        assert np.array_equal(before, after)

    def test_field_selection(self, solver):
        e = YeeSampler(solver, "E")
        b = YeeSampler(solver, "B")
        p = np.array([[0.0, 0.0, 0.75]])
        assert np.linalg.norm(e(p)) > 0
        assert np.linalg.norm(b(p)) == 0.0  # H untouched

    def test_invalid_field(self, solver):
        with pytest.raises(ValueError):
            YeeSampler(solver, "D")

    def test_inside_delegates_to_structure(self, solver):
        samp = YeeSampler(solver, "E")
        pts = np.array([[0.0, 0.0, 0.75], [5.0, 0.0, 0.75]])
        assert samp.inside(pts).tolist() == [True, False]

    def test_magnitude(self, solver):
        samp = YeeSampler(solver, "E")
        m = samp.magnitude(np.array([[0.0, 0.0, 0.75]]))
        assert m.shape == (1,)
        assert m[0] > 0


class TestAnalyticSampler:
    def test_matches_mode(self):
        mode = pillbox_tm010(1.0)
        samp = AnalyticSampler(mode, "E", t=0.3)
        pts = np.array([[0.2, 0.1, 0.0], [0.5, -0.4, 0.2]])
        assert np.allclose(samp(pts), mode.e_field(pts, 0.3))

    def test_b_selection(self):
        mode = pillbox_tm010(1.0)
        t_quarter = np.pi / (2 * mode.omega)
        samp = AnalyticSampler(mode, "B", t=t_quarter)
        assert np.linalg.norm(samp(np.array([[0.5, 0.0, 0.0]]))) > 0

    def test_inside_without_structure_all_true(self):
        samp = AnalyticSampler(pillbox_tm010(1.0), "E")
        assert samp.inside(np.array([[100.0, 0, 0]]))[0]

    def test_inside_with_structure(self):
        s = make_pillbox(radius=1.0, length=1.0, n_xy=4)
        samp = AnalyticSampler(pillbox_tm010(1.0), "E", structure=s)
        pts = np.array([[0.0, 0.0, 0.5], [0.0, 0.0, 5.0]])
        assert samp.inside(pts).tolist() == [True, False]

    def test_invalid_field(self):
        with pytest.raises(ValueError):
            AnalyticSampler(pillbox_tm010(1.0), "H")
