"""TXT-COURANT -- the Courant condition arithmetic.

Paper, section 3: "the simulations must not proceed faster than
electromagnetic information could physically flow through mesh
elements.  To satisfy the Courant Condition, simulating 100
nanoseconds in the real world requires millions of time steps";
section 3.4: the 12-cell structure reaches steady state at ~40 ns =
326,700 steps.

Measured: dt vs mesh resolution (dt ~ 1/resolution), steps for a
fixed physical duration across resolutions, step cost, and the
paper's own numbers recomputed: with the paper's implied cell size,
40 ns does take ~326,700 steps.
"""

import numpy as np
import pytest

from common import record

from repro.fields.geometry import make_pillbox
from repro.fields.solver import TimeDomainSolver, courant_dt

C_LIGHT = 299_792_458.0
RESOLUTIONS = [4.0, 8.0, 16.0]


@pytest.mark.parametrize("cells_per_unit", RESOLUTIONS)
def test_step_cost(benchmark, cells_per_unit):
    s = make_pillbox(n_xy=4, n_z_per_unit=3)
    solver = TimeDomainSolver(s, cells_per_unit=cells_per_unit)
    benchmark(solver.step)
    benchmark.extra_info["grid"] = solver.shape
    benchmark.extra_info["dt"] = solver.dt


def test_courant_report(benchmark):
    def measure():
        rows = []
        for res in RESOLUTIONS:
            s = make_pillbox(n_xy=4, n_z_per_unit=3)
            solver = TimeDomainSolver(s, cells_per_unit=res)
            rows.append((res, solver.dt, solver.steps_for(10.0)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "paper: Courant condition forces millions of steps for 100 ns;",
        "       40 ns of the 12-cell run = 326,700 steps",
        "measured (cells/unit -> dt, steps per 10 time units):",
    ]
    for res, dt, steps in rows:
        lines.append(f"  {res:5.1f}: dt={dt:.5f}, steps={steps}")
    # dt halves when resolution doubles
    ratio01 = rows[0][1] / rows[1][1]
    ratio12 = rows[1][1] / rows[2][1]
    lines.append(f"  dt ratio across 2x refinements: {ratio01:.2f}, {ratio12:.2f}")

    # recompute the paper's arithmetic: 40 ns / 326,700 steps gives the
    # implied Courant dt, hence the implied cell size of their mesh
    dt_paper = 40e-9 / 326_700
    implied_cell = dt_paper * C_LIGHT * np.sqrt(3.0)  # cubic-cell Courant
    steps_100ns = int(np.ceil(100e-9 / dt_paper))
    lines.append(
        f"  paper arithmetic check: dt = 40 ns / 326,700 = {dt_paper * 1e15:.1f} fs"
        f" -> implied cell ~{implied_cell * 1e3:.2f} mm;"
        f" 100 ns would need {steps_100ns:,} steps ('millions': "
        f"{steps_100ns >= 800_000})"
    )
    record("TXT-COURANT", lines)
    assert 1.7 < ratio01 < 2.3 and 1.7 < ratio12 < 2.3
    assert steps_100ns > 800_000


def test_courant_instability_demo(benchmark):
    """Violating the Courant limit must blow up -- the 'must not
    proceed faster' physics, demonstrated."""
    def measure():
        s = make_pillbox(n_xy=4, n_z_per_unit=3)
        solver = TimeDomainSolver(s, cells_per_unit=8.0, drive_amplitude=0.0)
        nz = solver.ez.shape
        solver.ez[nz[0] // 2, nz[1] // 2, nz[2] // 2] = 1.0
        solver.ez *= solver._mask["ez"]
        solver.dt = courant_dt(*solver.d, cfl=1.0) * 1.2  # 20% over the limit
        with np.errstate(over="ignore", invalid="ignore"):
            solver.run(200)
            return solver.energy()

    energy = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert not np.isfinite(energy) or energy > 1e6
