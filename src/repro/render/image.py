"""Image output and comparison metrics.

Images are written as binary PPM (P6), the simplest portable format —
no external imaging dependency is needed.  The metrics here back the
paper's qualitative claims quantitatively: ``psnr`` for "same image as
the reference", ``coverage`` for "how much of the halo region shows
detail" (the paper's Figure 1 argument that the hybrid rendering
resolves stratifications the pure volume rendering loses).
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np

__all__ = [
    "write_ppm",
    "read_ppm",
    "write_png",
    "psnr",
    "coverage",
    "structural_detail",
]


def write_ppm(path: str | os.PathLike, rgb8: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 array as a binary PPM file."""
    rgb8 = np.asarray(rgb8)
    if rgb8.ndim != 3 or rgb8.shape[2] != 3 or rgb8.dtype != np.uint8:
        raise ValueError("expected an (H, W, 3) uint8 array")
    h, w, _ = rgb8.shape
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        f.write(rgb8.tobytes())


def read_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PPM (P6) file into an (H, W, 3) uint8 array."""
    with open(path, "rb") as f:
        data = f.read()
    # header: magic, width, height, maxval -- whitespace/comment separated
    fields = []
    idx = 0
    while len(fields) < 4:
        # skip whitespace
        while idx < len(data) and data[idx : idx + 1].isspace():
            idx += 1
        if data[idx : idx + 1] == b"#":
            while idx < len(data) and data[idx : idx + 1] != b"\n":
                idx += 1
            continue
        start = idx
        while idx < len(data) and not data[idx : idx + 1].isspace():
            idx += 1
        fields.append(data[start:idx])
    if fields[0] != b"P6":
        raise ValueError("not a binary PPM (P6) file")
    w, h, maxval = int(fields[1]), int(fields[2]), int(fields[3])
    if maxval != 255:
        raise ValueError("only maxval=255 PPMs are supported")
    idx += 1  # single whitespace after maxval
    pixels = np.frombuffer(data, dtype=np.uint8, count=w * h * 3, offset=idx)
    return pixels.reshape(h, w, 3).copy()


def write_png(path: str | os.PathLike, rgb8: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 array as an 8-bit RGB PNG.

    Pure stdlib (zlib) -- no imaging dependency, same spirit as the
    PPM writer but viewable everywhere.
    """
    rgb8 = np.asarray(rgb8)
    if rgb8.ndim != 3 or rgb8.shape[2] != 3 or rgb8.dtype != np.uint8:
        raise ValueError("expected an (H, W, 3) uint8 array")
    h, w, _ = rgb8.shape

    def chunk(tag: bytes, payload: bytes) -> bytes:
        return (
            struct.pack(">I", len(payload))
            + tag
            + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
        )

    ihdr = struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0)  # 8-bit truecolor
    # filter byte 0 (None) before each scanline
    raw = b"".join(b"\x00" + rgb8[row].tobytes() for row in range(h))
    with open(path, "wb") as f:
        f.write(b"\x89PNG\r\n\x1a\n")
        f.write(chunk(b"IHDR", ihdr))
        f.write(chunk(b"IDAT", zlib.compress(raw, 6)))
        f.write(chunk(b"IEND", b""))


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two images in dB.

    Accepts uint8 or float arrays of identical shape; float images are
    assumed to be in [0, 1].  Identical images return ``inf``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("image shapes differ")
    if a.dtype == np.uint8:
        a = a.astype(np.float64) / 255.0
    if b.dtype == np.uint8:
        b = b.astype(np.float64) / 255.0
    mse = float(np.mean((a - b) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(1.0 / mse)


def coverage(rgb: np.ndarray, threshold: float = 0.02, background=None) -> float:
    """Fraction of pixels that differ from the background.

    Used to quantify how much of the field of view carries signal,
    e.g. how much of the tenuous halo survives a given rendering path.
    """
    rgb = np.asarray(rgb)
    if rgb.dtype == np.uint8:
        rgb = rgb.astype(np.float64) / 255.0
    if background is None:
        background = np.zeros(rgb.shape[-1])
    diff = np.abs(rgb - np.asarray(background)).max(axis=-1)
    return float(np.mean(diff > threshold))


def structural_detail(rgb: np.ndarray) -> float:
    """Mean gradient magnitude of the luminance image.

    A cheap proxy for "visible fine structure": the banded
    stratifications in the paper's Figure 1 raise this measure, while
    a blurred low-resolution volume rendering lowers it.
    """
    rgb = np.asarray(rgb)
    if rgb.dtype == np.uint8:
        rgb = rgb.astype(np.float64) / 255.0
    lum = rgb @ np.array([0.2126, 0.7152, 0.0722])
    gy, gx = np.gradient(lum)
    return float(np.mean(np.hypot(gx, gy)))
