"""Electromagnetic field lines -- the paper's section 3 workflow.

Solves the time domain inside a 3-cell accelerator structure (ports
driving RF in), pre-integrates electric field lines with the
density-proportional seeder, and renders the whole Figure 6 family:
flat lines, illuminated lines, streamtubes, self-orienting surfaces,
haloed strips, and transparency -- plus the Figure 7 incremental
loading sequence and a Figure 9-style cutaway.

    python examples/em_fieldlines.py
"""

from pathlib import Path

import numpy as np

from repro.fieldlines.compact import compression_report, pack_lines
from repro.fieldlines.illuminated import render_lines
from repro.fieldlines.incremental import IncrementalViewer, density_correlation
from repro.fieldlines.seeding import seed_density_proportional
from repro.fieldlines.sos import build_strips, render_strips
from repro.fieldlines.streamtube import build_tubes, render_tubes
from repro.fieldlines.transparency import cutaway, render_with_emphasis
from repro.fields.geometry import make_multicell_structure
from repro.fields.sampling import YeeSampler
from repro.fields.solver import TimeDomainSolver
from repro.render.camera import Camera
from repro.render.image import write_ppm

OUT = Path(__file__).parent / "output"
OUT.mkdir(exist_ok=True)


def main() -> None:
    # ---- solve the EM field -------------------------------------------
    structure = make_multicell_structure(3, n_xy=6, n_z_per_unit=7)
    solver = TimeDomainSolver(structure, cells_per_unit=10.0)
    duration = 2.0 * structure.length
    n_steps = solver.steps_for(duration)
    print(
        f"3-cell structure: {structure.mesh.n_elements} hex elements; "
        f"Courant dt={solver.dt:.4f} -> {n_steps} steps for t={duration:.1f}"
    )
    solver.run(n_steps)
    mesh = solver.fields_on_mesh()
    sampler = YeeSampler(solver, "E")

    # ---- pre-integrate lines ------------------------------------------
    print("seeding density-proportional field lines...")
    ordered = seed_density_proportional(
        mesh, sampler, total_lines=120, field_name="E",
        rng=np.random.default_rng(0),
    )
    rho = density_correlation(mesh, ordered, len(ordered))
    rep = compression_report(mesh, ordered.lines)
    print(
        f"  {len(ordered)} lines, density-vs-|E| rank correlation {rho:+.2f}; "
        f"packed lines {rep['line_bytes_per_step'] / 1e3:.0f} KB vs raw fields "
        f"{rep['raw_bytes_per_step'] / 1e3:.0f} KB (x{rep['compression_factor']:.1f})"
    )

    cam = Camera.fit_bounds(*structure.bounds(), width=320, height=320)

    # ---- the Figure 6 representation family ---------------------------
    print("rendering the representation family (Figure 6)...")
    strips = build_strips(ordered.lines, cam, width=0.025)
    tubes = build_tubes(ordered.lines, radius=0.012, n_sides=6)
    print(
        f"  triangles: SOS {strips.n_triangles} vs streamtube "
        f"{tubes.n_triangles} (x{tubes.n_triangles / strips.n_triangles:.1f})"
    )
    renders = {
        "fig6a_lines": render_lines(cam, ordered.lines, illuminated=False),
        "fig6b_illuminated": render_lines(cam, ordered.lines, illuminated=True),
        "fig6c_streamtubes": render_tubes(cam, tubes),
        "fig6d_sos": render_strips(cam, strips),
        "fig6f_halo": render_strips(cam, strips, halo_core=0.65),
        "fig6i_transparency": render_with_emphasis(
            cam, ordered.lines,
            center=[0, 0, structure.length / 2], radius=0.6, width=0.025,
        ),
    }
    # fig6h: cutaway of the front half
    front = cutaway(ordered.lines, [0, 0, 0], [0, 1, 0], keep="behind")
    renders["fig6h_cutaway"] = render_strips(
        cam, build_strips(front, cam, width=0.025)
    )
    for name, fb in renders.items():
        write_ppm(OUT / f"{name}.ppm", fb.to_rgb8())

    # ---- Figure 7: incremental loading --------------------------------
    print("incremental loading sweep (Figure 7)...")
    viewer = IncrementalViewer(ordered, cam, width=0.025)
    for n, fb in viewer.sweep([10, 30, 60, 120]):
        write_ppm(OUT / f"fig7_incremental_{n:03d}.ppm", fb.to_rgb8())
        print(f"  n={n:3d}: density correlation "
              f"{density_correlation(mesh, ordered, n):+.2f}")
    print(f"images in {OUT}/")


if __name__ == "__main__":
    main()
