"""TXT-TRANSMISSION -- reflection/transmission of the structure.

Paper, section 3: the EM code "models the reflection and transmission
properties of open structures in an accelerator design".

Measured: Poynting-flux power monitors up- and downstream of the
3-cell structure's irises; the transmission coefficient and the
iris-by-iris peak-flux attenuation during the fill transient -- the
quantities such a simulation exists to produce.
"""

import numpy as np
import pytest

from common import record

from repro.fields.geometry import make_multicell_structure
from repro.fields.ports import PowerMonitor, transmission
from repro.fields.solver import TimeDomainSolver


@pytest.fixture(scope="module")
def monitored_run():
    s = make_multicell_structure(3, n_xy=5, n_z_per_unit=5)
    solver = TimeDomainSolver(s, cells_per_unit=7.0)
    monitors = []
    for i in range(3):
        z0, z1 = s.profile.cell_z_range(i)
        monitors.append(PowerMonitor(solver, 0.5 * (z0 + z1)))

    def tick(_):
        for m in monitors:
            m.record()

    solver.run(solver.steps_for(3.0 * s.length), on_step=tick)
    return s, solver, monitors


def test_monitor_step_cost(benchmark, monitored_run):
    s, solver, monitors = monitored_run
    benchmark(monitors[0].record)


def test_transmission_report(benchmark, monitored_run):
    def measure():
        s, solver, monitors = monitored_run
        peaks = [m.peak_flux() for m in monitors]
        energies = [m.energy_through() for m in monitors]
        t12 = transmission(monitors[0], monitors[1])
        t13 = transmission(monitors[0], monitors[2])
        return peaks, energies, t12, t13

    peaks, energies, t12, t13 = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "paper: the solver models reflection and transmission of open",
        "       structures; irises partially reflect the drive",
        "measured (monitor at each cell center, fill transient):",
    ]
    for i, (p, e) in enumerate(zip(peaks, energies), start=1):
        lines.append(f"  cell {i}: peak |S_z| {p:.3e}, energy through {e:.3e}")
    lines.append(f"  transmission cell1->cell2: {t12:.3f}")
    lines.append(f"  transmission cell1->cell3: {t13:.3f}")
    record("TXT-TRANSMISSION", lines)
    # energy attenuates through each iris during the fill
    assert peaks[0] > peaks[1] > peaks[2]
    assert 0.0 < t13 < t12 < 1.5
