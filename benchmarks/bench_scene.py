"""ABLATION -- single-pass scene compositing vs sequential passes.

The hardware pipeline the paper targets resolves all primitives
against one depth buffer.  ``Scene`` reproduces that (fragments from
every primitive pooled, one depth-sorted composite); the naive
alternative -- compositing each primitive's finished layer over the
framebuffer -- is what sequential ``render_*(..., fb=fb)`` calls do,
and it breaks inter-primitive occlusion.  Measured: cost of each path
and the pixel disagreement between them on an interleaved scene.
"""

import numpy as np
import pytest

from common import record

from repro.fieldlines.sos import build_strips, render_strips
from repro.render.camera import Camera
from repro.render.framebuffer import Framebuffer
from repro.render.points import render_points
from repro.render.scene import Scene


@pytest.fixture(scope="module")
def interleaved(structure3, mode3, e_sampler, seeded_lines):
    """Strips plus a point cloud threaded through them in depth."""
    cam = Camera.fit_bounds(*structure3.bounds(), width=160, height=160)
    strips = build_strips(seeded_lines.lines, cam, width=0.03)
    rng = np.random.default_rng(0)
    lo, hi = structure3.bounds()
    pts = rng.uniform(lo, hi, (3000, 3))
    rgba = np.column_stack([rng.uniform(0.3, 1.0, (3000, 3)), np.full(3000, 0.9)])
    return cam, strips, pts, rgba


def test_scene_single_pass(benchmark, interleaved):
    cam, strips, pts, rgba = interleaved

    def one_pass():
        return Scene(cam).add_strips(strips).add_points(pts, rgba).render()

    benchmark(one_pass)


def test_sequential_passes(benchmark, interleaved):
    cam, strips, pts, rgba = interleaved

    def sequential():
        fb = Framebuffer(cam.width, cam.height)
        render_strips(cam, strips, fb=fb)
        render_points(cam, pts, rgba, fb=fb)
        return fb

    benchmark(sequential)


def test_scene_report(benchmark, interleaved):
    def measure():
        import time

        cam, strips, pts, rgba = interleaved
        t0 = time.perf_counter()
        img_scene = (
            Scene(cam).add_strips(strips).add_points(pts, rgba).render().to_rgb8()
        )
        t_scene = time.perf_counter() - t0
        t0 = time.perf_counter()
        fb = Framebuffer(cam.width, cam.height)
        render_strips(cam, strips, fb=fb)
        render_points(cam, pts, rgba, fb=fb)
        img_seq = fb.to_rgb8()
        t_seq = time.perf_counter() - t0
        differs = (np.abs(img_scene.astype(int) - img_seq.astype(int)).max(axis=2) > 8).mean()
        return t_scene, t_seq, differs

    t_scene, t_seq, differs = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ABL-SCENE",
        [
            "hardware resolves all primitives against one depth buffer;",
            "sequential layer-over compositing breaks occlusion between them",
            f"measured: one-pass scene {t_scene * 1e3:.0f} ms, sequential "
            f"{t_seq * 1e3:.0f} ms",
            f"  pixels where sequential compositing disagrees (points drawn",
            f"  over strips that should hide them): {100 * differs:.1f}%",
        ],
    )
    assert differs > 0.001, "the occlusion difference should be visible"
    assert t_scene < 5 * t_seq  # single pass costs no more than ~the same work
