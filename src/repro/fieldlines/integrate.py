"""Streamline integration through vector fields.

Classic fixed-step RK4 along the *direction field* F/|F| (so the step
size is arc length and lines never stall in weak regions).  A line
terminates when it leaves the domain, enters a region below the
magnitude floor, closes on itself (magnetic field lines), or reaches
the step cap.

``integrate_streamline`` traces one seed (both directions by default,
matching how E lines run wall-to-wall); ``integrate_batch`` traces
many seeds simultaneously with an active mask, fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trace import span

__all__ = ["FieldLine", "integrate_streamline", "integrate_batch"]


@dataclass
class FieldLine:
    """One traced field line.

    Attributes
    ----------
    points : (k, 3) polyline vertices
    tangents : (k, 3) unit tangent at each vertex
    magnitudes : (k,) |F| at each vertex
    termination : why tracing stopped ('domain', 'weak', 'loop', 'cap')
    order : creation index assigned by the seeder (-1 before seeding)
    """

    points: np.ndarray
    tangents: np.ndarray
    magnitudes: np.ndarray
    termination: str = "cap"
    order: int = -1
    meta: dict = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return len(self.points)

    def arc_lengths(self) -> np.ndarray:
        """Cumulative arc length at each vertex (starts at 0)."""
        if self.n_points < 2:
            return np.zeros(self.n_points)
        seg = np.linalg.norm(np.diff(self.points, axis=0), axis=1)
        return np.concatenate([[0.0], np.cumsum(seg)])

    @property
    def length(self) -> float:
        return float(self.arc_lengths()[-1]) if self.n_points > 1 else 0.0

    def mean_magnitude(self) -> float:
        return float(self.magnitudes.mean()) if self.n_points else 0.0


def _unit_direction(field_fn, pts: np.ndarray, floor: float):
    v = field_fn(pts)
    mag = np.linalg.norm(v, axis=1)
    safe = np.where(mag < floor, 1.0, mag)
    return v / safe[:, None], mag


def _rk4_direction(field_fn, pts: np.ndarray, h: float, floor: float) -> np.ndarray:
    k1, _ = _unit_direction(field_fn, pts, floor)
    k2, _ = _unit_direction(field_fn, pts + 0.5 * h * k1, floor)
    k3, _ = _unit_direction(field_fn, pts + 0.5 * h * k2, floor)
    k4, _ = _unit_direction(field_fn, pts + h * k3, floor)
    return (k1 + 2.0 * k2 + 2.0 * k3 + k4) / 6.0


def integrate_streamline(
    field_fn,
    seed,
    step: float = 0.02,
    max_steps: int = 400,
    min_magnitude: float = 1e-6,
    bidirectional: bool = True,
    loop_tolerance: float | None = None,
) -> FieldLine:
    """Trace a single field line from a seed point.

    Parameters
    ----------
    field_fn : callable(points (N, 3)) -> (N, 3); must also expose
        ``inside(points) -> bool mask`` (all samplers in
        :mod:`repro.fields.sampling` do)
    step : arc-length step size
    max_steps : per-direction step cap
    min_magnitude : termination floor on |F|
    bidirectional : trace against the field too and join the halves
    loop_tolerance : if set, stop when the line returns within this
        distance of the seed (after 10 steps) -- closed B lines
    """
    with span("integrate"):
        return _integrate_streamline(
            field_fn, seed, step, max_steps, min_magnitude, bidirectional,
            loop_tolerance,
        )


def _integrate_streamline(
    field_fn, seed, step, max_steps, min_magnitude, bidirectional, loop_tolerance
) -> FieldLine:
    seed = np.asarray(seed, dtype=np.float64).reshape(1, 3)
    halves = []
    term = "cap"
    directions = (+1.0, -1.0) if bidirectional else (+1.0,)
    for sign in directions:
        pts = [seed[0].copy()]
        p = seed.copy()
        this_term = "cap"
        for istep in range(max_steps):
            d = _rk4_direction(field_fn, p, sign * step, min_magnitude)
            p_new = p + sign * step * d
            _, mag = _unit_direction(field_fn, p_new, min_magnitude)
            if not field_fn.inside(p_new)[0]:
                this_term = "domain"
                break
            if mag[0] < min_magnitude:
                this_term = "weak"
                break
            pts.append(p_new[0].copy())
            p = p_new
            if (
                loop_tolerance is not None
                and istep > 10
                and np.linalg.norm(p_new[0] - seed[0]) < loop_tolerance
            ):
                this_term = "loop"
                break
        halves.append(np.array(pts))
        if this_term != "cap":
            term = this_term
        if this_term == "loop":
            break  # a closed line needs no backward half

    if len(halves) == 2:
        points = np.vstack([halves[1][::-1], halves[0][1:]])
    else:
        points = halves[0]
    if len(points) == 1:
        points = np.vstack([points, points])  # degenerate stub
    return _finalize(field_fn, points, term, min_magnitude)


def _finalize(field_fn, points: np.ndarray, term: str, floor: float) -> FieldLine:
    v = field_fn(points)
    mags = np.linalg.norm(v, axis=1)
    tangents = np.gradient(points, axis=0)
    norms = np.linalg.norm(tangents, axis=1, keepdims=True)
    tangents = tangents / np.where(norms < 1e-12, 1.0, norms)
    return FieldLine(points=points, tangents=tangents, magnitudes=mags, termination=term)


def _finalize_batch(field_fn, trails, terms) -> list[FieldLine]:
    """Finalize many trails with a single field evaluation.

    Per-line arithmetic is identical to :func:`_finalize`; only the
    magnitude sampling is fused into one call over the concatenated
    vertices.
    """
    if not trails:
        return []
    all_pts = np.concatenate(trails)
    mags = np.linalg.norm(field_fn(all_pts), axis=1)
    out = []
    offset = 0
    for pts, term in zip(trails, terms):
        k = len(pts)
        tangents = np.gradient(pts, axis=0)
        norms = np.linalg.norm(tangents, axis=1, keepdims=True)
        tangents = tangents / np.where(norms < 1e-12, 1.0, norms)
        out.append(
            FieldLine(
                points=pts,
                tangents=tangents,
                magnitudes=mags[offset : offset + k],
                termination=term,
            )
        )
        offset += k
    return out


def integrate_batch(
    field_fn,
    seeds: np.ndarray,
    step: float = 0.02,
    max_steps: int = 400,
    min_magnitude: float = 1e-6,
    direction=+1.0,
) -> list[FieldLine]:
    """Trace many seeds at once, vectorized and allocation-free per step.

    All active lines advance together in lockstep through shared RK4
    field evaluations; finished lines drop out.  ``direction`` may be a
    scalar sign or a per-seed (N,) array of signs, so a forward and a
    backward half-trace fleet can share one lockstep loop.  This is the
    kernel under the density-proportional seeder's batched mode
    (:mod:`repro.fieldlines.parallel_seeding`) as well as the non-greedy
    baselines and tests.
    """
    seeds = np.atleast_2d(np.asarray(seeds, dtype=np.float64))
    n = len(seeds)
    signs = np.broadcast_to(
        np.asarray(direction, dtype=np.float64), (n,)
    ).reshape(n, 1)
    # preallocated trail buffer: vertex v of line i lives at buf[v, i]
    buf = np.empty((max_steps + 1, n, 3))
    buf[0] = seeds
    n_pts = np.ones(n, dtype=np.int64)
    active = field_fn.inside(seeds).copy()
    terms = np.array(["cap"] * n, dtype=object)
    p = seeds.copy()
    with span("integrate_batch", n=n):
        for _ in range(max_steps):
            if not active.any():
                break
            idx = np.flatnonzero(active)
            h = signs[idx] * step
            d = _rk4_direction(field_fn, p[idx], h, min_magnitude)
            p_new = p[idx] + h * d
            ins = field_fn.inside(p_new)
            _, mag = _unit_direction(field_fn, p_new, min_magnitude)
            keep = ins & (mag >= min_magnitude)
            kept = idx[keep]
            buf[n_pts[kept], kept] = p_new[keep]
            n_pts[kept] += 1
            died = idx[~keep]
            if died.size:
                terms[died] = np.where(ins[~keep], "weak", "domain")
                active[died] = False
            p[kept] = p_new[keep]
        trails = [
            np.ascontiguousarray(buf[: n_pts[i], i])
            if n_pts[i] > 1
            else np.repeat(buf[:1, i], 2, axis=0)
            for i in range(n)
        ]
        return _finalize_batch(field_fn, trails, terms)
