"""Checkpoint/resume: a killed pipeline restarts from completed work."""

import json

import numpy as np
import pytest

from repro.beams.simulation import BeamConfig
from repro.core.checkpoint import Checkpoint
from repro.core.config import BeamPipelineConfig, FieldLinePipelineConfig
from repro.core.errors import FormatError, SimulatedCrash
from repro.core.pipeline import beam_pipeline, fieldline_pipeline
from repro.core.trace import capture


def _small_config():
    return BeamPipelineConfig(
        beam=BeamConfig(n_particles=2000, n_cells=2, seed=9),
        frame_every=4,
        volume_resolution=8,
        max_level=4,
    )


class TestManifest:
    def test_roundtrip(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck")
        assert not ckpt.done("partition")
        ckpt.record_step("partition", 0)
        ckpt.record_step("partition", 4)
        ckpt.mark_done("partition", steps=[0, 4])
        reopened = Checkpoint(tmp_path / "ck")
        assert reopened.done("partition")
        assert reopened.steps("partition") == [0, 4]
        assert reopened.meta("partition")["steps"] == [0, 4]
        assert reopened.has_step("partition", 4)
        assert not reopened.has_step("partition", 8)

    def test_garbage_manifest_raises_typed(self, tmp_path):
        d = tmp_path / "ck"
        d.mkdir()
        (d / "manifest.json").write_text("{not json")
        with pytest.raises(FormatError):
            Checkpoint(d)

    def test_wrong_version_raises_typed(self, tmp_path):
        d = tmp_path / "ck"
        d.mkdir()
        (d / "manifest.json").write_text(json.dumps({"version": 99, "stages": {}}))
        with pytest.raises(FormatError):
            Checkpoint(d)


class TestBeamResume:
    def test_kill_mid_partition_then_resume(self, tmp_path, monkeypatch):
        """Die after the first partitioned frame; the re-run resumes
        the finished step and produces the uncheckpointed result."""
        import repro.core.pipeline as pipeline_mod

        config = _small_config()
        reference = beam_pipeline(config, render=False)
        assert len(reference.steps) >= 2  # the kill must be mid-stage

        real_partition = pipeline_mod.partition
        calls = {"n": 0}

        def dying_partition(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise SimulatedCrash("killed before the second frame")
            return real_partition(*args, **kwargs)

        ckdir = tmp_path / "ck"
        monkeypatch.setattr(pipeline_mod, "partition", dying_partition)
        with pytest.raises(SimulatedCrash):
            beam_pipeline(config, render=False, checkpoint_dir=ckdir)
        monkeypatch.setattr(pipeline_mod, "partition", real_partition)

        with capture(enabled=True) as tracer:
            resumed = beam_pipeline(config, render=False, checkpoint_dir=ckdir)
        assert tracer.counters.get("checkpoint_steps_resumed", 0) >= 1
        assert resumed.steps == reference.steps
        for a, b in zip(resumed.hybrids, reference.hybrids):
            assert np.array_equal(a.volume, b.volume)
            assert np.array_equal(a.points, b.points)

    def test_completed_run_never_recomputes(self, tmp_path, monkeypatch):
        import repro.core.pipeline as pipeline_mod

        config = _small_config()
        ckdir = tmp_path / "ck"
        first = beam_pipeline(config, render=False, checkpoint_dir=ckdir)

        def must_not_run(*args, **kwargs):  # pragma: no cover - trap
            raise AssertionError("partition re-ran on a finished checkpoint")

        monkeypatch.setattr(pipeline_mod, "partition", must_not_run)
        monkeypatch.setattr(pipeline_mod, "extract", must_not_run)
        monkeypatch.setattr(pipeline_mod, "BeamSimulation", must_not_run)
        with capture(enabled=True) as tracer:
            second = beam_pipeline(config, render=False, checkpoint_dir=ckdir)
        assert tracer.counters.get("checkpoint_stages_resumed", 0) == 2
        assert second.steps == first.steps
        for a, b in zip(second.hybrids, first.hybrids):
            assert np.array_equal(a.volume, b.volume)
            assert np.array_equal(a.points, b.points)


class TestFieldlineResume:
    def test_seed_stage_resumes(self, tmp_path, monkeypatch):
        import repro.core.pipeline as pipeline_mod

        config = FieldLinePipelineConfig(n_cells=1, total_lines=10, image_size=32)
        ckdir = tmp_path / "ck"
        first = fieldline_pipeline(config, render=False, checkpoint_dir=ckdir)

        def must_not_run(*args, **kwargs):  # pragma: no cover - trap
            raise AssertionError("seeding re-ran on a finished checkpoint")

        monkeypatch.setattr(
            pipeline_mod, "seed_density_proportional", must_not_run
        )
        with capture(enabled=True) as tracer:
            second = fieldline_pipeline(config, render=False, checkpoint_dir=ckdir)
        assert tracer.counters.get("checkpoint_stages_resumed", 0) == 1
        assert len(second.ordered) == len(first.ordered)
        assert np.allclose(second.ordered.desired, first.ordered.desired)
        assert np.allclose(second.ordered.achieved, first.ordered.achieved)
        for a, b in zip(first.ordered.lines, second.ordered.lines):
            assert np.allclose(a.points, b.points, atol=1e-6)
