"""Cutaway and region-emphasis transparency (paper section 3.3.3)."""

import numpy as np
import pytest

from repro.fieldlines.integrate import FieldLine
from repro.fieldlines.transparency import (
    cutaway,
    region_emphasis_alpha,
    render_with_emphasis,
)
from repro.render.camera import Camera


def _line_at(y, n=10):
    pts = np.zeros((n, 3))
    pts[:, 0] = np.linspace(-1, 1, n)
    pts[:, 1] = y
    t = np.zeros((n, 3))
    t[:, 0] = 1.0
    return FieldLine(points=pts, tangents=t, magnitudes=np.ones(n))


class TestCutaway:
    def test_keep_behind(self):
        lines = [_line_at(-0.5), _line_at(0.5)]
        kept = cutaway(lines, plane_point=[0, 0, 0], plane_normal=[0, 1, 0])
        assert len(kept) == 1
        assert kept[0].points[0, 1] == -0.5

    def test_keep_front(self):
        lines = [_line_at(-0.5), _line_at(0.5)]
        kept = cutaway(lines, [0, 0, 0], [0, 1, 0], keep="front")
        assert kept[0].points[0, 1] == 0.5

    def test_straddling_line_dropped(self):
        diag = _line_at(0.0)
        diag.points[:, 1] = np.linspace(-1, 1, 10)
        kept = cutaway([diag], [0, 0, 0], [0, 1, 0])
        assert kept == []

    def test_bad_keep(self):
        with pytest.raises(ValueError):
            cutaway([], [0, 0, 0], [0, 1, 0], keep="middle")


class TestRegionEmphasis:
    def test_inside_opaque_outside_faint(self):
        lines = [_line_at(0.0), _line_at(0.9)]
        alphas = region_emphasis_alpha(lines, center=[0, 0, 0], radius=0.3)
        assert alphas[0] == 1.0
        assert alphas[1] < 1.0

    def test_any_point_inside_counts(self):
        line = _line_at(5.0)
        line.points[3] = [0.0, 0.0, 0.0]  # one vertex dips into the ROI
        alphas = region_emphasis_alpha([line], [0, 0, 0], 0.1)
        assert alphas[0] == 1.0

    def test_custom_alphas(self):
        lines = [_line_at(0.9)]
        alphas = region_emphasis_alpha(
            lines, [0, 0, 0], 0.1, alpha_inside=0.9, alpha_outside=0.05
        )
        assert alphas[0] == 0.05


class TestRenderWithEmphasis:
    def test_roi_brighter_than_context(self):
        cam = Camera(eye=[0, 0, 5.0], target=[0, 0, 0], width=64, height=64)
        lines = [_line_at(0.0), _line_at(0.8), _line_at(-0.8)]
        fb = render_with_emphasis(
            cam, lines, center=[0, 0, 0], radius=0.3, width=0.15
        )
        a = fb.rgba[..., 3]
        center_alpha = a[28:36].max()     # ROI line row
        context_alpha = a[:16].max()      # context line rows
        assert center_alpha > 2 * context_alpha

    def test_all_inside(self):
        cam = Camera(eye=[0, 0, 5.0], target=[0, 0, 0], width=32, height=32)
        fb = render_with_emphasis(cam, [_line_at(0.0)], [0, 0, 0], 10.0, width=0.2)
        assert fb.rgba[..., 3].max() > 0.9

    def test_empty_lines(self):
        cam = Camera(eye=[0, 0, 5.0], target=[0, 0, 0], width=32, height=32)
        fb = render_with_emphasis(cam, [], [0, 0, 0], 1.0)
        assert fb.to_rgb8().sum() == 0
