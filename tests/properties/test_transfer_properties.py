"""Property-based tests of transfer functions and point selection."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.hybrid.transfer import DensityNormalizer, LinkedTransferFunctions
from repro.render.points import select_fraction

unit = st.floats(0.0, 1.0, allow_nan=False)


class TestLinkedPairProperties:
    @given(boundary=st.floats(-0.5, 1.5), ramp=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_inverse_identity_everywhere(self, boundary, ramp):
        pair = LinkedTransferFunctions(boundary=boundary, ramp=ramp)
        t = np.linspace(0.0, 1.0, 301)
        np.testing.assert_allclose(pair.point(t) + pair.volume.weight(t), 1.0)

    @given(boundary=st.floats(0.0, 1.0), ramp=st.floats(0.0, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_point_fraction_monotone_decreasing(self, boundary, ramp):
        pair = LinkedTransferFunctions(boundary=boundary, ramp=ramp)
        t = np.linspace(0.0, 1.0, 200)
        f = pair.point(t)
        assert np.all(np.diff(f) <= 1e-12)
        assert f.min() >= 0.0 and f.max() <= 1.0

    @given(
        b1=st.floats(0.0, 1.0),
        b2=st.floats(0.0, 1.0),
        ramp=st.floats(0.0, 0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_edits_keep_linkage(self, b1, b2, ramp):
        pair = LinkedTransferFunctions(boundary=b1, ramp=ramp)
        pair.set_boundary(b2, side="point")
        assert pair.is_inverse_pair()


class TestNormalizerProperties:
    @given(
        max_density=st.floats(1e-6, 1e12),
        mode=st.sampled_from(["log", "linear"]),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_into_unit_interval(self, max_density, mode, data):
        n = DensityNormalizer(max_density, mode=mode)
        d = np.sort(
            data.draw(
                arrays(
                    np.float64, (50,),
                    elements=st.floats(0.0, max_density, allow_nan=False),
                )
            )
        )
        out = n(d)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert np.all(np.diff(out) >= -1e-12)

    @given(max_density=st.floats(1e-3, 1e9), mode=st.sampled_from(["log", "linear"]))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, max_density, mode):
        n = DensityNormalizer(max_density, mode=mode)
        d = np.linspace(0.0, max_density, 31)
        np.testing.assert_allclose(n.inverse(n(d)), d, rtol=1e-6, atol=1e-9)


class TestSelectFractionProperties:
    @given(n=st.integers(100, 5000), f=unit)
    @settings(max_examples=40, deadline=None)
    def test_kept_share_close_to_fraction(self, n, f):
        keep = select_fraction(n, np.full(n, f))
        assert abs(keep.mean() - f) <= 1.0 / np.sqrt(n) + 1e-2

    @given(n=st.integers(10, 2000), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_fractions(self, n, data):
        f1 = data.draw(arrays(np.float64, (n,), elements=unit))
        bump = data.draw(arrays(np.float64, (n,), elements=unit))
        f2 = np.minimum(f1 + bump, 1.0)
        k1 = select_fraction(n, f1)
        k2 = select_fraction(n, f2)
        assert np.all(k2[k1])  # raising fractions never drops a point
