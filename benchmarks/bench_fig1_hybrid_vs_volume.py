"""FIG1 -- hybrid rendering vs pure volume rendering.

Paper, Figure 1: a 256^3 volume-only rendering is compared with a
mixed rendering at 64^3 + 2 M points; "the mixed rendering ...
provides more detail than the volume rendering while displaying at a
much higher frame rate".

Here (scaled): a high-resolution volume-only rendering vs a hybrid at
1/4 the volume resolution plus the halo points.  Measured: render
time of each, plus the detail metrics (halo pixel coverage and mean
luminance-gradient structure) showing the hybrid resolves detail the
big volume loses.
"""

import numpy as np
import pytest

from common import record, scaled

from repro.hybrid.renderer import HybridRenderer
from repro.octree.extraction import extract
from repro.render.camera import Camera
from repro.render.image import coverage, structural_detail

IMAGE = 160
HI_RES = 96          # stands in for the paper's 256^3
LO_RES = 24          # stands in for the paper's 64^3


@pytest.fixture(scope="module")
def frames(beam_partitioned):
    thr = float(np.percentile(beam_partitioned.nodes["density"], 70))
    hybrid = extract(beam_partitioned, thr, volume_resolution=LO_RES)
    volume_only = extract(beam_partitioned, 0.0, volume_resolution=HI_RES)
    cam = Camera.fit_bounds(hybrid.lo, hybrid.hi, width=IMAGE, height=IMAGE)
    return hybrid, volume_only, cam


def test_fig1_volume_only(benchmark, frames):
    _, volume_only, cam = frames
    renderer = HybridRenderer(n_slices=64)
    fb = benchmark(lambda: renderer.render_volume_part(volume_only, cam))
    img = fb.to_rgb8()
    benchmark.extra_info["resolution"] = HI_RES
    benchmark.extra_info["coverage"] = coverage(img)
    benchmark.extra_info["detail"] = structural_detail(img)


def test_fig1_hybrid(benchmark, frames):
    hybrid, volume_only, cam = frames
    renderer = HybridRenderer(n_slices=32)
    fb = benchmark(lambda: renderer.render(hybrid, cam))
    img = fb.to_rgb8()
    benchmark.extra_info["resolution"] = LO_RES
    benchmark.extra_info["n_points"] = hybrid.n_points
    benchmark.extra_info["coverage"] = coverage(img)
    benchmark.extra_info["detail"] = structural_detail(img)


def test_fig1_report(benchmark, frames):
    """The shape claim: hybrid is faster AND shows more halo detail."""
    import time

    hybrid, volume_only, cam = frames
    renderer_hi = HybridRenderer(n_slices=64)
    renderer_lo = HybridRenderer(n_slices=32)

    def compare():
        t0 = time.perf_counter()
        img_vol = renderer_hi.render_volume_part(volume_only, cam).to_rgb8()
        t_vol = time.perf_counter() - t0
        t0 = time.perf_counter()
        img_hyb = renderer_lo.render(hybrid, cam).to_rgb8()
        t_hyb = time.perf_counter() - t0
        return img_vol, t_vol, img_hyb, t_hyb

    img_vol, t_vol, img_hyb, t_hyb = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    cov_vol, cov_hyb = coverage(img_vol), coverage(img_hyb)
    det_vol, det_hyb = structural_detail(img_vol), structural_detail(img_hyb)
    vol_bytes = volume_only.volume.nbytes
    hyb_bytes = hybrid.nbytes()

    record(
        "FIG1",
        [
            "paper: 256^3 volume-only vs 64^3 + 2M-point hybrid;",
            "       hybrid shows more detail at much higher frame rate",
            f"measured (scaled {HI_RES}^3 vs {LO_RES}^3 + {hybrid.n_points} pts):",
            f"  volume-only: {t_vol:.2f} s/frame, coverage {cov_vol:.3f}, detail {det_vol:.4f}, {vol_bytes/1e6:.1f} MB",
            f"  hybrid:      {t_hyb:.2f} s/frame, coverage {cov_hyb:.3f}, detail {det_hyb:.4f}, {hyb_bytes/1e6:.1f} MB",
            f"  speedup x{t_vol / t_hyb:.1f}, detail ratio x{det_hyb / max(det_vol, 1e-12):.1f}",
        ],
    )
    assert t_hyb < t_vol, "hybrid must render faster than the big volume"
    assert cov_hyb > cov_vol, "hybrid must show more of the faint halo"
