"""Two-pass out-of-core octree partitioning over a sharded store.

The in-core :func:`repro.octree.partition.partition` needs the whole
frame (plus its sort permutations) in RAM -- a dead end at the paper's
10^8-10^9 particle scale.  This module produces the *same* partitioned
representation while touching only one shard of particles at a time:

1. **Pass 1 (count).**  Each shard is read once, its particles' Morton
   keys computed against the global bounds, and the per-cell
   (max-level key) histogram written to a small per-shard artifact.
2. **Plan.**  The per-shard histograms merge into the global cell
   histogram; recursive *weighted* subdivision over it reproduces the
   exact leaf set of the in-core octree (splitting depends only on
   per-range counts, which are identical).  Density-sorting the leaves
   yields the node table, and prefix sums assign every (cell, shard)
   pair an absolute destination range in the final particle file.
3. **Pass 2 (scatter).**  Each shard is read once more and its rows
   written straight into the pre-allocated output shards at their
   final positions, via ``numpy.memmap`` with the written pages
   dropped back to the OS -- peak RSS stays at a few shards.

**Equivalence guarantee** (tested bit-for-bit): the in-core path's
final particle order is the stable sort by ``(leaf density rank,
morton key, original index)``.  The scatter destinations reproduce
exactly that: cells are laid out leaf-by-leaf in density-rank order
and key order within a leaf (the plan's prefix sums), and within one
cell particles land in (shard, within-shard) order -- which *is*
original-index order, because shards partition the frame
contiguously.  Bounds, keys, leaf splits, densities, and the stable
density sort all compute on identical float64 inputs, so nodes and
particles match the in-core result exactly.

Shard iteration runs through :func:`repro.core.executor.run_shards`
(crash-safe, ``workers=N``); every pass opens a
``stream_partition_pass`` span and bumps the counter of the same
name, and a :class:`repro.core.checkpoint.Checkpoint` (optional)
records per-shard progress so a killed run resumes where it died.
"""

from __future__ import annotations

import io
import shutil
import zlib
from pathlib import Path

import numpy as np

from repro.core.checkpoint import Checkpoint
from repro.core.dataset import as_dataset
from repro.core.errors import FormatError
from repro.core.executor import run_shards
from repro.core.store import (
    DEFAULT_SHARD_ROWS,
    ShardedStore,
    _evict_pages,
    shard_name,
    write_manifest,
)
from repro.core.trace import count, gauge_peak_rss, span
from repro.octree.octree import NODE_DTYPE, morton_keys, plot_columns
from repro.octree.partition import PartitionedFrame

__all__ = ["PartitionedStore", "partition_store"]

NODES_FILE = "partition.nodes"
_ROW_BYTES = 6 * 8


# ----------------------------------------------------------------------
# the partitioned result
class PartitionedStore:
    """An octree-partitioned frame living on disk as a sharded store.

    The out-of-core sibling of
    :class:`repro.octree.partition.PartitionedFrame`: the node table
    (sorted by increasing density) is small and lives in RAM; the
    density-sorted particle file is a :class:`ShardedStore` that
    extraction and rendering stream shard by shard.
    """

    def __init__(
        self,
        directory,
        store: ShardedStore,
        nodes: np.ndarray,
        plot_type: str,
        lo: np.ndarray,
        hi: np.ndarray,
        max_level: int,
        capacity: int,
        step: int = 0,
    ):
        self.directory = Path(directory)
        self.store = store
        self.nodes = nodes
        self.plot_type = plot_type
        self.columns = plot_columns(plot_type)
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        self.max_level = int(max_level)
        self.capacity = int(capacity)
        self.step = int(step)

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory) -> "PartitionedStore":
        """Open a partitioned store directory (node table + shards)."""
        from repro.octree.format import read_nodes_file

        directory = Path(directory)
        nodes_path = directory / NODES_FILE
        if not nodes_path.is_file():
            raise FormatError(f"{directory}: not a partitioned store (no {NODES_FILE})")
        nodes, n_particles, max_level, capacity, step, lo, hi, plot_type = read_nodes_file(
            nodes_path
        )
        store = ShardedStore.open(directory)
        if store.n_particles != n_particles:
            raise FormatError(
                f"{directory}: node table covers {n_particles} particles, "
                f"store holds {store.n_particles}"
            )
        return cls(
            directory, store, nodes, plot_type, lo, hi, max_level, capacity, step
        )

    # ------------------------------------------------------------------
    @property
    def lod(self):
        """The store's :class:`~repro.octree.lod.LodHierarchy`, opened
        lazily from the v2 manifest's ``lod`` section; ``None`` when no
        hierarchy has been built (``repro.octree.lod.build_lod``)."""
        if not hasattr(self, "_lod"):
            from repro.octree.lod import LodHierarchy

            self._lod = LodHierarchy.open(self)
        return self._lod

    @property
    def n_particles(self) -> int:
        return self.store.n_particles

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def nbytes(self) -> int:
        """On-disk footprint of the partitioned representation."""
        return int(self.store.nbytes() + self.nodes.nbytes)

    def density_cutoff_index(self, threshold_density: float) -> int:
        """Number of leading particles in nodes below the threshold --
        the same prefix property as the in-core frame."""
        n_below = int(
            np.searchsorted(self.nodes["density"], threshold_density, side="left")
        )
        return int(self.nodes["count"][:n_below].sum())

    def read_prefix(self, n_particles: int) -> np.ndarray:
        """Materialize the first ``n_particles`` rows of the particle
        file (the halo-extraction access pattern); reads only the
        shards the prefix touches."""
        return self.store.read_rows(0, int(n_particles))

    def chunks(self, columns=None):
        """Stream the density-sorted particle file shard by shard."""
        return self.store.chunks(columns)

    def to_frame(self) -> PartitionedFrame:
        """Materialize as an in-core :class:`PartitionedFrame` (defeats
        the out-of-core design; for tests and small frames)."""
        return PartitionedFrame(
            plot_type=self.plot_type,
            columns=self.columns,
            particles=self.store.to_array(),
            nodes=self.nodes.copy(),
            lo=self.lo.copy(),
            hi=self.hi.copy(),
            max_level=self.max_level,
            capacity=self.capacity,
            step=self.step,
        )

    def validate(self) -> None:
        """Structural invariants (node table tiling + density order)."""
        counts = self.nodes["count"].astype(np.int64)
        starts = self.nodes["start"].astype(np.int64)
        assert counts.sum() == self.n_particles, "node counts must cover all particles"
        assert np.all(starts == np.concatenate([[0], np.cumsum(counts)[:-1]])), (
            "nodes must tile the particle file contiguously"
        )
        assert np.all(np.diff(self.nodes["density"]) >= 0), (
            "nodes must be sorted by increasing density"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"PartitionedStore({str(self.directory)!r}, "
            f"n_particles={self.n_particles}, n_nodes={self.n_nodes})"
        )


# ----------------------------------------------------------------------
# per-shard kernels (module-level so the parallel path can pickle them)
def _save_npz_atomic(path: Path, **arrays) -> None:
    from repro.core.atomic import atomic_write_bytes

    buf = io.BytesIO()
    np.savez(buf, **arrays)
    atomic_write_bytes(path, buf.getvalue())


def _save_npy_atomic(path: Path, array: np.ndarray) -> None:
    from repro.core.atomic import atomic_write_bytes

    buf = io.BytesIO()
    np.save(buf, array)
    atomic_write_bytes(path, buf.getvalue())


def _pass1_artifact(workdir, i: int) -> Path:
    return Path(workdir) / f"pass1_{i:06d}.npz"


def _base_artifact(workdir, i: int) -> Path:
    return Path(workdir) / f"base_{i:06d}.npy"


def _count_shard_cells(coords, i, lo, hi, max_level, workdir) -> None:
    """Pass-1 kernel: per-cell key histogram of one shard, to disk."""
    coords = np.asarray(coords, dtype=np.float64)
    if len(coords):
        keys = morton_keys(coords, np.asarray(lo), np.asarray(hi), max_level)
        cells, counts = np.unique(keys, return_counts=True)
    else:
        cells = np.empty(0, dtype=np.uint64)
        counts = np.empty(0, dtype=np.int64)
    _save_npz_atomic(
        _pass1_artifact(workdir, i),
        cells=cells.astype(np.uint64),
        counts=counts.astype(np.int64),
    )


def _scatter_shard_rows(rows, i, columns, lo, hi, max_level, workdir, out_dir) -> None:
    """Pass-2 kernel: write one shard's rows to their final positions."""
    rows = np.asarray(rows, dtype=np.float64)
    if len(rows) == 0:
        return
    plan = np.load(Path(workdir) / "plan.npz")
    cells = plan["cells"]
    cell_dest = plan["cell_dest"]
    out_rows = int(plan["out_shard_rows"])
    n_total = int(plan["n_particles"])
    base = np.load(_base_artifact(workdir, i))

    keys = morton_keys(
        rows[:, list(columns)], np.asarray(lo), np.asarray(hi), max_level
    )
    uq, inv, cnts = np.unique(keys, return_inverse=True, return_counts=True)
    if len(uq) != len(base):
        raise FormatError(
            f"shard {i}: pass-1 artifact covers {len(base)} cells, "
            f"pass 2 sees {len(uq)} -- stale checkpoint work directory?"
        )
    # within-shard arrival rank inside each cell (original-order stable)
    order = np.argsort(inv, kind="stable")
    run_starts = np.cumsum(cnts) - cnts
    ranks = np.empty(len(keys), dtype=np.int64)
    ranks[order] = np.arange(len(keys), dtype=np.int64) - np.repeat(run_starts, cnts)

    gidx = np.searchsorted(cells, uq)
    dest = cell_dest[gidx][inv] + base[inv] + ranks

    w_order = np.argsort(dest, kind="stable")
    sorted_dest = dest[w_order]
    shard_ids = sorted_dest // out_rows
    cut = np.flatnonzero(np.diff(shard_ids)) + 1
    starts = np.concatenate([[0], cut])
    ends = np.concatenate([cut, [len(sorted_dest)]])
    src = rows[w_order]
    for a, b in zip(starts, ends):
        o = int(shard_ids[a])
        o_rows = min(out_rows, n_total - o * out_rows)
        mm = np.memmap(
            Path(out_dir) / shard_name(o), dtype="<f8", mode="r+", shape=(o_rows, 6)
        )
        mm[sorted_dest[a:b] - o * out_rows] = src[a:b]
        mm.flush()
        _evict_pages(mm._mmap)
        count("store_shard_write")


def _pass1_store_task(task) -> int:
    """Picklable pass-1 wrapper for sharded-store inputs."""
    store_dir, i, columns, lo, hi, max_level, workdir = task
    store = ShardedStore.open(store_dir)
    mm = store.shard(i)
    coords = np.array(mm[:, list(columns)], dtype=np.float64)
    if isinstance(mm, np.memmap):
        _evict_pages(mm._mmap)
    _count_shard_cells(coords, i, lo, hi, max_level, workdir)
    return i


def _pass2_store_task(task) -> int:
    """Picklable pass-2 wrapper for sharded-store inputs."""
    store_dir, i, columns, lo, hi, max_level, workdir, out_dir = task
    store = ShardedStore.open(store_dir)
    mm = store.shard(i)
    rows = np.array(mm, dtype=np.float64)
    if isinstance(mm, np.memmap):
        _evict_pages(mm._mmap)
    _scatter_shard_rows(rows, i, columns, lo, hi, max_level, workdir, out_dir)
    return i


# ----------------------------------------------------------------------
# the plan: merge histograms, rebuild the leaf set, assign destinations
def _subdivide_cells(
    cells, cum, a, b, level, prefix, max_level, capacity, leaves, min_level=0
):
    """Weighted twin of ``Octree._subdivide``: recurse over the sorted
    unique-cell array with per-range particle totals from prefix sums.
    Splitting depends only on those totals, so the leaf set is the one
    the in-core octree builds over the full key array.

    ``min_level`` forces subdivision of non-empty ranges down to that
    level even when a range already fits ``capacity``.  The forest
    partition uses it so a sparsely populated brick still refines to
    its own octant: the brick tree's leaves then coincide with the
    global tree's leaves inside that octant instead of spilling a
    coarse node across brick boundaries.
    """
    if a == b:
        return
    total = int(cum[b] - cum[a])
    if (total <= capacity and level >= min_level) or level >= max_level:
        leaves.append((level, prefix, a, b))
        return
    shift = np.uint64(3 * (max_level - level - 1))
    child = (cells[a:b] >> shift) & np.uint64(7)
    bounds = a + np.searchsorted(child, np.arange(9))
    for c in range(8):
        _subdivide_cells(
            cells,
            cum,
            int(bounds[c]),
            int(bounds[c + 1]),
            level + 1,
            (prefix << 3) | c,
            max_level,
            capacity,
            leaves,
            min_level,
        )


def _merge_histograms(workdir, n_shards):
    """Stream the pass-1 artifacts into the global (cells, counts)."""
    cells = np.empty(0, dtype=np.uint64)
    counts = np.empty(0, dtype=np.int64)
    for i in range(n_shards):
        with np.load(_pass1_artifact(workdir, i)) as d:
            u_s = d["cells"].astype(np.uint64)
            c_s = d["counts"].astype(np.int64)
        if len(u_s) == 0:
            continue
        if len(cells) == 0:
            cells, counts = u_s, c_s
            continue
        merged, inv = np.unique(np.concatenate([cells, u_s]), return_inverse=True)
        acc = np.zeros(len(merged), dtype=np.int64)
        # both halves hold unique keys, so each fancy add hits distinct slots
        acc[inv[: len(cells)]] += counts
        acc[inv[len(cells) :]] += c_s
        cells, counts = merged, acc
    return cells, counts


def _build_plan(
    workdir, n_shards, lo, hi, max_level, capacity, n_particles, out_rows,
    plot_type, step, min_level=0,
):
    """Merge pass-1 histograms into the node table + scatter plan."""
    from repro.octree.format import write_nodes_file

    cells, counts = _merge_histograms(workdir, n_shards)
    if int(counts.sum()) != int(n_particles):
        raise FormatError(
            f"pass-1 histograms cover {int(counts.sum())} particles, "
            f"dataset holds {n_particles} -- stale work directory?"
        )
    cum = np.concatenate([[0], np.cumsum(counts)])
    leaves: list[tuple[int, int, int, int]] = []
    _subdivide_cells(
        cells, cum, 0, len(cells), 0, 0, max_level, capacity, leaves, min_level
    )

    nodes = np.empty(len(leaves), dtype=NODE_DTYPE)
    spans = np.empty(len(leaves), dtype=np.int64)
    offset = 0
    for k, (level, prefix, a, b) in enumerate(leaves):
        node_count = int(cum[b] - cum[a])
        nodes[k] = (level, prefix, offset, node_count, 0.0)
        spans[k] = b - a
        offset += node_count
    root_volume = float(np.prod(np.asarray(hi) - np.asarray(lo)))
    vol = root_volume / (8.0 ** nodes["level"].astype(np.float64))
    nodes["density"] = nodes["count"] / vol

    # identical stable density sort as the in-core path
    density_order = np.argsort(nodes["density"], kind="stable")
    nodes_sorted = nodes[density_order].copy()
    sorted_counts = nodes_sorted["count"].astype(np.int64)
    nodes_sorted["start"] = np.concatenate(
        [[0], np.cumsum(sorted_counts)[:-1]]
    ).astype(np.uint64)

    # absolute destination of each cell's first particle in the final
    # file: leaves laid out in density-rank order, cells in key order
    # within each leaf
    rank_of_leaf = np.empty(len(leaves), dtype=np.int64)
    rank_of_leaf[density_order] = np.arange(len(leaves))
    cell_rank = rank_of_leaf[np.repeat(np.arange(len(leaves)), spans)]
    perm = np.argsort(cell_rank, kind="stable")
    offsets = np.concatenate([[0], np.cumsum(counts[perm])[:-1]])
    cell_dest = np.empty(len(cells), dtype=np.int64)
    cell_dest[perm] = offsets

    _save_npz_atomic(
        Path(workdir) / "plan.npz",
        cells=cells,
        cell_dest=cell_dest,
        out_shard_rows=np.int64(out_rows),
        n_particles=np.int64(n_particles),
    )
    write_nodes_file(
        Path(workdir) / NODES_FILE,
        nodes_sorted, n_particles, max_level, capacity, step, lo, hi, plot_type,
    )

    # per-(shard, cell) bases: how many particles of each cell arrived
    # from earlier shards -- a single sequential sweep
    running = np.zeros(len(cells), dtype=np.int64)
    for i in range(n_shards):
        with np.load(_pass1_artifact(workdir, i)) as d:
            u_s = d["cells"].astype(np.uint64)
            c_s = d["counts"].astype(np.int64)
        gidx = np.searchsorted(cells, u_s)
        _save_npy_atomic(_base_artifact(workdir, i), running[gidx].copy())
        running[gidx] += c_s


# ----------------------------------------------------------------------
def _run_checkpointed(fn, pending, task_of, workers, ck, stage, label):
    """Run per-shard tasks through :func:`run_shards`, recording each
    finished shard in the checkpoint (batched so parallel runs are not
    serialized on manifest writes)."""
    batch = 1 if workers <= 1 else workers * 4
    for a in range(0, len(pending), batch):
        group = pending[a : a + batch]
        run_shards(fn, [task_of(i) for i in group], workers=workers, label=label)
        if ck is not None:
            for i in group:
                ck.record_step(stage, i)


def _resolve_bounds(ds, columns, lo, hi, ck):
    """Global octree bounds, exactly as the in-core ``Octree`` default:
    chunk-wise min/max (bitwise equal to the global min/max) plus the
    same padding formula."""
    if lo is not None and hi is not None:
        return np.asarray(lo, dtype=np.float64), np.asarray(hi, dtype=np.float64)
    if ck is not None and ck.done("bounds"):
        meta = ck.meta("bounds")
        dlo = np.array(meta["dlo"], dtype=np.float64)
        dhi = np.array(meta["dhi"], dtype=np.float64)
    else:
        dlo, dhi = ds.bounds(columns)
        dlo = np.asarray(dlo, dtype=np.float64)
        dhi = np.asarray(dhi, dtype=np.float64)
        if ck is not None:
            ck.mark_done(
                "bounds", dlo=[float(v) for v in dlo], dhi=[float(v) for v in dhi]
            )
    pad = (dhi - dlo) * 1e-9 + (np.abs(dlo) + np.abs(dhi) + 1.0) * 1e-9
    lo = dlo - pad if lo is None else np.asarray(lo, dtype=np.float64)
    hi = dhi + pad if hi is None else np.asarray(hi, dtype=np.float64)
    return lo, hi


def _prepare_output(out_dir, n_particles, out_rows) -> int:
    """Pre-size the output shard files (sparse); returns shard count."""
    n_out = max(1, -(-n_particles // out_rows))
    for o in range(n_out):
        rows_o = min(out_rows, n_particles - o * out_rows)
        path = Path(out_dir) / shard_name(o)
        size = rows_o * _ROW_BYTES
        if not path.exists() or path.stat().st_size != size:
            with open(path, "wb") as f:
                f.truncate(size)
    return n_out


def partition_store(
    data,
    out,
    plot_type: str = "xyz",
    *,
    max_level: int = 6,
    capacity: int = 64,
    lo=None,
    hi=None,
    step=None,
    workers: int = 1,
    shard_rows: int = None,
    checkpoint_dir=None,
    min_level: int = 0,
) -> PartitionedStore:
    """Partition a dataset out-of-core into a :class:`PartitionedStore`.

    ``data`` is anything :func:`repro.core.dataset.as_dataset` accepts
    (an ``(N, 6)`` array, a :class:`ShardedStore`, any dataset); the
    result lands in directory ``out`` as a sharded store of the
    density-sorted particle file plus the node table, **bit-identical**
    to what the in-core ``partition`` would produce for the same frame
    (see the module docstring for why).

    ``workers > 1`` fans the per-shard passes out through
    :func:`repro.core.executor.run_shards` when ``data`` is itself a
    sharded store (other backends run serially -- their bytes live in
    this process anyway).  ``checkpoint_dir`` makes the whole two-pass
    run resumable at per-shard granularity; a re-run after a crash
    (including a torn shard-artifact write) redoes only unfinished
    shards.  ``shard_rows`` sizes the output shards (default: the
    input store's, else :data:`DEFAULT_SHARD_ROWS`).  ``min_level``
    forces subdivision of non-empty regions down to that level even
    below ``capacity`` -- the forest partition's octant-alignment
    guarantee (see :mod:`repro.octree.forest`).
    """
    ds = as_dataset(data)
    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    ck = Checkpoint(checkpoint_dir) if checkpoint_dir is not None else None
    if ck is not None and ck.done("finalize"):
        count("checkpoint_stages_resumed")
        return PartitionedStore.open(out)

    n = ds.n_particles
    if n == 0:
        raise ValueError("octree needs at least one particle")
    columns = plot_columns(plot_type)
    if step is None:
        step = ds.step
    is_store = isinstance(ds, ShardedStore)
    if shard_rows is None:
        shard_rows = ds.shard_rows if is_store else DEFAULT_SHARD_ROWS
    out_rows = int(shard_rows)
    par_workers = workers if is_store else 1
    n_shards = ds.n_chunks
    workdir = ck.path("stream_work") if ck is not None else out / "_work"
    Path(workdir).mkdir(parents=True, exist_ok=True)

    with span("stream_partition_pass", which="bounds"):
        lo, hi = _resolve_bounds(ds, columns, lo, hi, ck)
    lo_t = tuple(float(v) for v in lo)
    hi_t = tuple(float(v) for v in hi)

    # ---- pass 1: per-shard cell histograms -----------------------------
    if ck is None or not ck.done("pass1"):
        count("stream_partition_pass")
        with span("stream_partition_pass", which="count", shards=n_shards):
            pending = [
                i
                for i in range(n_shards)
                if ck is None or not ck.has_step("pass1", i)
            ]
            if par_workers > 1:
                def task_of(i):
                    return (str(ds.directory), i, columns, lo_t, hi_t,
                            int(max_level), str(workdir))

                _run_checkpointed(
                    _pass1_store_task, pending, task_of, par_workers, ck,
                    "pass1", "stream_pass1",
                )
            else:
                def count_one(i):
                    _count_shard_cells(
                        ds.chunk(i, columns), i, lo, hi, max_level, workdir
                    )
                    return i

                _run_checkpointed(
                    count_one, pending, lambda i: i, 1, ck, "pass1", "stream_pass1"
                )
        if ck is not None:
            ck.mark_done("pass1", n_shards=n_shards)

    # ---- plan: leaves, densities, destinations -------------------------
    if ck is None or not ck.done("plan"):
        with span("stream_partition_pass", which="plan"):
            _build_plan(
                workdir, n_shards, lo, hi, int(max_level), int(capacity),
                n, out_rows, plot_type, int(step), int(min_level),
            )
        if ck is not None:
            ck.mark_done("plan")

    # ---- pass 2: scatter into the output shards ------------------------
    if ck is None or not ck.done("pass2"):
        count("stream_partition_pass")
        with span("stream_partition_pass", which="scatter", shards=n_shards):
            _prepare_output(out, n, out_rows)
            pending = [
                i
                for i in range(n_shards)
                if ck is None or not ck.has_step("pass2", i)
            ]
            if par_workers > 1:
                def task2_of(i):
                    return (str(ds.directory), i, columns, lo_t, hi_t,
                            int(max_level), str(workdir), str(out))

                _run_checkpointed(
                    _pass2_store_task, pending, task2_of, par_workers, ck,
                    "pass2", "stream_pass2",
                )
            else:
                def scatter_one(i):
                    _scatter_shard_rows(
                        ds.chunk(i), i, columns, lo, hi, max_level, workdir, out
                    )
                    return i

                _run_checkpointed(
                    scatter_one, pending, lambda i: i, 1, ck, "pass2", "stream_pass2"
                )
        if ck is not None:
            ck.mark_done("pass2")

    # ---- finalize: CRCs + node table + manifest (the commit point) -----
    from repro.octree.format import read_nodes_file, write_nodes_file

    with span("stream_partition_pass", which="finalize"):
        n_out = max(1, -(-n // out_rows))
        entries = []
        for o in range(n_out):
            raw = (out / shard_name(o)).read_bytes()
            entries.append({"rows": len(raw) // _ROW_BYTES, "crc32": zlib.crc32(raw)})
        nodes_sorted = read_nodes_file(Path(workdir) / NODES_FILE)[0]
        write_nodes_file(
            out / NODES_FILE,
            nodes_sorted, n, max_level, capacity, int(step), lo, hi, plot_type,
        )
        write_manifest(out, entries, out_rows, int(step))
    if ck is not None:
        ck.mark_done("finalize")
    else:
        shutil.rmtree(workdir, ignore_errors=True)

    count("particles_routed", n)
    count("octree_nodes", len(nodes_sorted))
    gauge_peak_rss()
    return PartitionedStore.open(out)
