"""Animation rendering and temporal coherence."""

import numpy as np
import pytest

from repro.beams.simulation import BeamConfig, BeamSimulation
from repro.core.dataset import as_dataset
from repro.hybrid.animation import render_animation, temporal_coherence
from repro.hybrid.renderer import HybridRenderer
from repro.hybrid.viewer import FrameViewer
from repro.octree.extraction import extract
from repro.octree.partition import partition
from repro.render.camera import Camera


@pytest.fixture(scope="module")
def frame_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("anim")
    sim = BeamSimulation(
        BeamConfig(n_particles=6_000, n_cells=3, seed=21, sc_grid=(16, 16, 16)).resolved()
    )
    i = 0
    threshold = None

    def keep(step, particles):
        nonlocal i, threshold
        pf = partition(as_dataset(particles), "xyz", max_level=5, capacity=48, step=step)
        if threshold is None:
            threshold = float(np.percentile(pf.nodes["density"], 60))
        extract(pf, threshold, volume_resolution=12).save(
            out / f"f_{i:04d}.hybrid"
        )
        i += 1

    sim.run(on_frame=keep, frame_every=3)
    return out


class TestAnimation:
    def test_renders_all_frames(self, frame_dir, tmp_path):
        viewer = FrameViewer(frame_dir, renderer=HybridRenderer(n_slices=8))
        images = render_animation(viewer, tmp_path / "out")
        assert len(images) == len(viewer)
        assert len(list((tmp_path / "out").glob("anim_*.ppm"))) == len(viewer)

    def test_subset_and_prefix(self, frame_dir, tmp_path):
        viewer = FrameViewer(frame_dir, renderer=HybridRenderer(n_slices=8))
        images = render_animation(
            viewer, tmp_path / "out2", indices=[0, 2], prefix="sub"
        )
        assert len(images) == 2
        assert (tmp_path / "out2" / "sub_0001.ppm").exists()

    def test_shared_camera_consistent_shape(self, frame_dir, tmp_path):
        viewer = FrameViewer(frame_dir, renderer=HybridRenderer(n_slices=8))
        cam = Camera.fit_bounds(
            viewer.frame(0).lo, viewer.frame(0).hi, width=40, height=40
        )
        images = render_animation(viewer, tmp_path / "out3", camera=cam)
        assert all(img.shape == (40, 40, 3) for img in images)

    def test_coherence_measures_evolution(self, frame_dir, tmp_path):
        """An evolving beam produces nonzero frame-to-frame change;
        a frozen sequence produces zero.  (Cadence comparisons alias
        against the envelope's lattice-periodic breathing, so the
        robust claim is evolution detection, and the triangle
        inequality bounds any skip by the path through it.)"""
        viewer = FrameViewer(frame_dir, renderer=HybridRenderer(n_slices=8))
        cam = Camera.fit_bounds(
            viewer.frame(0).lo, viewer.frame(0).hi, width=48, height=48
        )
        frames = render_animation(viewer, tmp_path / "o4", camera=cam)
        changes = temporal_coherence(frames)
        assert len(changes) == len(frames) - 1
        assert np.all(changes > 0)
        # L1 triangle inequality: direct 2-skip <= path through the middle
        direct = temporal_coherence([frames[0], frames[2]])[0]
        assert direct <= changes[0] + changes[1] + 1e-9

    def test_coherence_degenerate(self):
        assert temporal_coherence([]).size == 0
        assert temporal_coherence([np.zeros((4, 4, 3), dtype=np.uint8)]).size == 0
        same = np.full((4, 4, 3), 7, dtype=np.uint8)
        assert temporal_coherence([same, same])[0] == 0.0
