"""Power flow and transmission measurement.

The EM code the paper visualizes "models the reflection and
transmission properties of open structures in an accelerator design"
(section 3).  This module measures those properties on our solver:
a :class:`PowerMonitor` integrates the Poynting flux S = E x H
through a transverse plane each step, and :func:`transmission`
compares monitors up- and downstream -- the quantity an accelerator
designer reads off such a simulation.
"""

from __future__ import annotations

import numpy as np

from repro.fields.solver import TimeDomainSolver

_trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 1.x fallback

__all__ = ["PowerMonitor", "transmission"]


class PowerMonitor:
    """Integrates Poynting flux through the plane z = z_plane.

    Parameters
    ----------
    solver : the running time-domain solver
    z_plane : axial position of the monitor plane
    samples_per_axis : cross-section sampling resolution

    Call :meth:`record` after each solver step (or pass the monitor's
    ``on_step`` to :meth:`TimeDomainSolver.run`).
    """

    def __init__(self, solver: TimeDomainSolver, z_plane: float, samples_per_axis: int = 24):
        self.solver = solver
        self.z_plane = float(z_plane)
        radius = solver.structure.profile.cell_radius * 1.25
        xs = np.linspace(-radius, radius, samples_per_axis)
        gx, gy = np.meshgrid(xs, xs, indexing="ij")
        pts = np.column_stack(
            [gx.ravel(), gy.ravel(), np.full(gx.size, self.z_plane)]
        )
        inside = solver.structure.inside(pts)
        self.points = pts[inside]
        cell_area = (xs[1] - xs[0]) ** 2
        self._area_weight = cell_area
        self.flux_history: list[float] = []
        self.time_history: list[float] = []

    def record(self) -> float:
        """Measure the instantaneous flux (positive = +z flow) and
        append it to the history."""
        e = self.solver.sample_e(self.points)
        h = self.solver.sample_b(self.points)
        s_z = e[:, 0] * h[:, 1] - e[:, 1] * h[:, 0]
        flux = float(s_z.sum() * self._area_weight)
        self.flux_history.append(flux)
        self.time_history.append(self.solver.time)
        return flux

    def on_step(self, solver) -> None:
        """Adapter for :meth:`TimeDomainSolver.run`'s callback."""
        self.record()

    # ------------------------------------------------------------------
    def energy_through(self) -> float:
        """Time-integrated |flux| (total energy that crossed the
        plane, either direction)."""
        if len(self.flux_history) < 2:
            return 0.0
        return float(
            _trapezoid(np.abs(self.flux_history), self.time_history)
        )

    def net_energy_through(self) -> float:
        """Signed time-integrated flux (+z positive)."""
        if len(self.flux_history) < 2:
            return 0.0
        return float(_trapezoid(self.flux_history, self.time_history))

    def peak_flux(self) -> float:
        return float(np.max(np.abs(self.flux_history))) if self.flux_history else 0.0


def transmission(upstream: PowerMonitor, downstream: PowerMonitor) -> float:
    """Energy transmission coefficient between two monitor planes.

    The ratio of energy that crossed the downstream plane to energy
    that crossed the upstream plane; < 1 for a structure that stores
    or reflects part of the drive.
    """
    through_up = upstream.energy_through()
    if through_up <= 0:
        return 0.0
    return downstream.energy_through() / through_up
