"""The dataset-first entry point and the two backends behind it."""

import numpy as np
import pytest

from repro.beams.io import frame_to_store, write_frame
from repro.core.dataset import ArrayDataset, ParticleDataset, as_dataset, open_dataset
from repro.core.errors import FormatError
from repro.core.store import ShardedStore, create_store


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(23)
    return rng.normal(0.0, 1.0, (5_000, 6))


class TestArrayDataset:
    def test_chunking_is_virtual_and_exact(self, particles):
        ds = ArrayDataset(particles, step=3, chunk_rows=700)
        assert ds.n_particles == len(ds) == 5_000
        assert ds.step == 3
        assert ds.n_chunks == 8
        assert np.array_equal(np.concatenate(list(ds.chunks())), particles)
        # zero-copy: a chunk is a view of the wrapped array
        assert ds.chunk(0).base is particles

    def test_single_chunk_floor(self):
        ds = ArrayDataset(np.zeros((0, 6)))
        assert ds.n_chunks == 1
        assert len(ds.chunk(0)) == 0

    def test_chunk_bounds_checked(self, particles):
        ds = ArrayDataset(particles, chunk_rows=700)
        with pytest.raises(IndexError):
            ds.chunk(8)

    def test_bounds_match_global_minmax(self, particles):
        ds = ArrayDataset(particles, chunk_rows=321)
        lo, hi = ds.bounds(columns=(0, 1, 2))
        assert np.array_equal(lo, particles[:, :3].min(axis=0))
        assert np.array_equal(hi, particles[:, :3].max(axis=0))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 5)))


class TestOpenDataset:
    def test_ndarray(self, particles):
        ds = open_dataset(particles, step=5)
        assert isinstance(ds, ArrayDataset)
        assert ds.step == 5
        assert np.array_equal(ds.to_array(), particles)

    def test_store_directory(self, tmp_path, particles):
        create_store(tmp_path / "st", particles, shard_rows=512, step=9)
        ds = open_dataset(tmp_path / "st")
        assert isinstance(ds, ShardedStore)
        assert isinstance(ds, ParticleDataset)  # registered virtual subclass
        assert ds.step == 9
        assert np.array_equal(ds.to_array(), particles)

    def test_frame_file(self, tmp_path, particles):
        path = tmp_path / "beam.frame"
        write_frame(path, particles, step=12)
        ds = open_dataset(str(path))
        assert isinstance(ds, ArrayDataset)
        assert ds.step == 12  # the frame's own step wins
        assert np.array_equal(ds.to_array(), particles)

    def test_dataset_passthrough(self, particles):
        ds = ArrayDataset(particles)
        assert open_dataset(ds) is ds

    def test_both_backends_round_trip_identically(self, tmp_path, particles):
        """The acceptance contract: open_dataset round-trips the legacy
        array and the sharded store to the same bytes."""
        create_store(tmp_path / "st", particles, shard_rows=512)
        a = open_dataset(particles)
        b = open_dataset(tmp_path / "st")
        assert a.n_particles == b.n_particles
        assert np.array_equal(a.to_array(), b.to_array())
        alo, ahi = a.bounds()
        blo, bhi = b.bounds()
        assert np.array_equal(alo, blo) and np.array_equal(ahi, bhi)

    def test_unrecognized_path(self, tmp_path):
        with pytest.raises(FormatError):
            open_dataset(tmp_path / "nope")

    def test_unrecognized_type(self):
        with pytest.raises(TypeError):
            open_dataset(object())


class TestAsDataset:
    def test_passthrough_and_coercion(self, particles, tmp_path):
        ds = ArrayDataset(particles)
        assert as_dataset(ds) is ds
        st = create_store(tmp_path / "st", particles, shard_rows=2048)
        assert as_dataset(st) is st
        wrapped = as_dataset(particles, step=4)
        assert isinstance(wrapped, ArrayDataset)
        assert wrapped.step == 4


def test_frame_to_store(tmp_path, particles):
    path = tmp_path / "beam.frame"
    write_frame(path, particles, step=21)
    st = frame_to_store(path, tmp_path / "st", shard_rows=777)
    assert st.step == 21
    assert st.shard_rows == 777
    assert np.array_equal(st.to_array(), particles)
