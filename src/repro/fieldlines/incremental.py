"""Incremental loading and its accuracy metric (paper sections 3.2, 3.4).

"By sweeping from a minimum to a maximum number of field lines, one
gets a compelling sense of the structure and magnitude of the fields
being built up. ...  In each image, the density of field lines is
approximately proportional to the magnitude of the underlying field."

``IncrementalViewer`` plays that sweep; ``density_correlation``
quantifies the claim: the correlation between per-element line-visit
counts and per-element field intensity, at any prefix length n.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree
from scipy.stats import spearmanr

from repro.fieldlines.seeding import OrderedFieldLines
from repro.fieldlines.sos import build_strips, render_strips
from repro.fields.mesh import HexMesh
from repro.render.camera import Camera

__all__ = ["IncrementalViewer", "density_correlation", "element_line_counts"]


def element_line_counts(mesh: HexMesh, lines) -> np.ndarray:
    """Per-element count of distinct lines passing through (nearest-
    element-center assignment, matching the seeder's bookkeeping)."""
    counts = np.zeros(mesh.n_elements)
    if not lines:
        return counts
    tree = cKDTree(mesh.element_centers())
    for line in lines:
        _, idx = tree.query(line.points)
        counts[np.unique(idx)] += 1.0
    return counts


def density_correlation(
    mesh: HexMesh, ordered: OrderedFieldLines, n: int, field_name: str | None = None
) -> float:
    """Spearman correlation between line density and field intensity
    over elements, for the first ``n`` lines.

    Rank correlation is the right test: the claim is monotone
    proportionality ("densities ... proportional to the corresponding
    field strength"), and ranks are insensitive to the arbitrary
    field-units scale.
    """
    field_name = field_name or ordered.field_name
    counts = element_line_counts(mesh, ordered.prefix(n))
    intensity = mesh.element_field_intensity(field_name) * mesh.element_volumes()
    rho, _ = spearmanr(counts, intensity)
    return float(rho)


class IncrementalViewer:
    """Renders the incremental-loading sweep of an ordered line set.

    "The set of field lines in each image in the sequence is a
    superset of those field lines in the preceding image" holds by
    construction: frames are prefixes.
    """

    def __init__(
        self,
        ordered: OrderedFieldLines,
        camera: Camera,
        width: float = 0.02,
        colormap: str = "electric",
        alpha_by_magnitude: bool = False,
    ):
        self.ordered = ordered
        self.camera = camera
        self.width = float(width)
        self.colormap = colormap
        self.alpha_by_magnitude = bool(alpha_by_magnitude)
        mags = [line.mean_magnitude() for line in ordered.lines] or [0.0, 1.0]
        self._mrange = (float(min(mags)), float(max(mags) or 1.0))

    def frame(self, n: int):
        """Render the first ``n`` lines; returns the framebuffer."""
        lines = self.ordered.prefix(n)
        strips = build_strips(lines, self.camera, self.width)
        all_m = (
            np.concatenate([l.magnitudes for l in lines]) if lines else np.zeros(1)
        )
        return render_strips(
            self.camera,
            strips,
            colormap=self.colormap,
            alpha_by_magnitude=self.alpha_by_magnitude,
            magnitude_range=(float(all_m.min()), float(all_m.max()) or 1.0),
        )

    def sweep(self, frame_counts):
        """Yield (n, framebuffer) over a sequence of prefix sizes --
        the animation of the paper's Figures 7 and 10."""
        for n in frame_counts:
            yield n, self.frame(int(n))

    def strongest_first_check(self) -> bool:
        """The first-loaded lines should come from the strongest-field
        regions: mean |F| of the first tenth exceeds that of the last
        tenth."""
        lines = self.ordered.lines
        if len(lines) < 10:
            return True
        tenth = max(len(lines) // 10, 1)
        first = np.mean([l.mean_magnitude() for l in lines[:tenth]])
        last = np.mean([l.mean_magnitude() for l in lines[-tenth:]])
        return bool(first >= last)
