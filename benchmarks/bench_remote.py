"""TXT-REMOTE -- remote visualization over a constrained link.

Paper, sections 1/2.1/2.3: the hybrid representation exists partly so
data can be "efficiently transferred from the computer where it was
generated to a remote computer on a scientist's desk thousands of
miles away"; low thresholds give sizes "appropriate for ... quickly
transferring over a network".

Measured: bytes per frame and transfer time across extraction
thresholds over a throttled localhost link, versus shipping the raw
frame.
"""

import numpy as np
import pytest

from common import record

from repro.remote.client import VisualizationClient
from repro.remote.server import VisualizationServer

BANDWIDTH = 20e6  # 20 MB/s "wide-area" link
PERCENTILES = [30, 60, 90]


@pytest.fixture(scope="module")
def server(beam_partitioned):
    with VisualizationServer([beam_partitioned], bandwidth_bps=BANDWIDTH) as srv:
        yield srv


def test_remote_fetch(benchmark, server, beam_partitioned):
    thr = float(np.percentile(beam_partitioned.nodes["density"], 60))

    def fetch():
        with VisualizationClient(server.address) as client:
            return client.get_hybrid(0, thr, resolution=24)

    h = benchmark.pedantic(fetch, rounds=3, iterations=1)
    assert h.n_points > 0


def test_remote_report(benchmark, server, beam_partitioned):
    def measure():
        raw_bytes = beam_partitioned.n_particles * 48
        rows = []
        with VisualizationClient(server.address) as client:
            for p in PERCENTILES:
                thr = float(np.percentile(beam_partitioned.nodes["density"], p))
                before_b = client.stats["bytes_received"]
                before_s = client.stats["seconds"]
                h = client.get_hybrid(0, thr, resolution=24)
                rows.append(
                    (
                        p,
                        h.n_points,
                        client.stats["bytes_received"] - before_b,
                        client.stats["seconds"] - before_s,
                    )
                )
        return raw_bytes, rows

    raw_bytes, rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    raw_seconds = raw_bytes / BANDWIDTH
    lines = [
        "paper: compact hybrids make remote exploration practical",
        f"link: {BANDWIDTH / 1e6:.0f} MB/s; raw frame {raw_bytes / 1e6:.1f} MB "
        f"would take {raw_seconds:.1f} s",
        "threshold percentile -> points, wire bytes, transfer time:",
    ]
    for p, n_pts, nbytes, secs in rows:
        lines.append(
            f"  p{p:02d}: {n_pts:7d} pts, {nbytes / 1e6:6.2f} MB, {secs:6.2f} s "
            f"(x{raw_seconds / max(secs, 1e-9):.1f} faster than raw)"
        )
    record("TXT-REMOTE", lines)
    # every hybrid transfer beats shipping the raw frame
    for _, _, nbytes, secs in rows:
        assert nbytes < raw_bytes
    sizes = [r[2] for r in rows]
    assert sizes == sorted(sizes), "higher threshold, more bytes"
