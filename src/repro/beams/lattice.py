"""Accelerator lattice elements and FODO channel builders.

The paper's primary simulation is "an intense beam propagating in a
magnetic quadrupole channel ... focusing provided in the transverse
(x and y) directions" by alternately focusing and defocusing
quadrupoles -- the source of the four-fold symmetry in its Figure 5.

Elements expose 2x2 transverse transfer matrices per plane (thin
linear optics); the longitudinal plane is a pure drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Element",
    "Drift",
    "Quadrupole",
    "fodo_cell",
    "fodo_channel",
    "channel_period",
    "one_turn_matrix",
]


@dataclass(frozen=True)
class Element:
    """Base class: a beamline element of length L (meters)."""

    length: float

    def matrices(self):
        """Return (Mx, My) 2x2 transfer matrices for the (x, px) and
        (y, py) planes over the full element length."""
        raise NotImplementedError

    def split(self, n: int):
        """Return ``n`` equal sub-elements (for space-charge kicks
        between thin slices)."""
        raise NotImplementedError


def _drift_matrix(length: float) -> np.ndarray:
    return np.array([[1.0, length], [0.0, 1.0]])


def _quad_matrices(length: float, k: float):
    """Thick-quadrupole matrices; k > 0 focuses x and defocuses y."""
    if k == 0.0:
        m = _drift_matrix(length)
        return m, m.copy()
    sk = np.sqrt(abs(k))
    phi = sk * length
    focus = np.array(
        [[np.cos(phi), np.sin(phi) / sk], [-sk * np.sin(phi), np.cos(phi)]]
    )
    defocus = np.array(
        [[np.cosh(phi), np.sinh(phi) / sk], [sk * np.sinh(phi), np.cosh(phi)]]
    )
    return (focus, defocus) if k > 0 else (defocus, focus)


@dataclass(frozen=True)
class Drift(Element):
    """Field-free drift of given length."""

    def matrices(self):
        m = _drift_matrix(self.length)
        return m, m.copy()

    def split(self, n: int):
        return [Drift(self.length / n)] * n


@dataclass(frozen=True)
class Quadrupole(Element):
    """Magnetic quadrupole with focusing strength ``k`` (1/m^2).

    ``k > 0`` focuses in x and defocuses in y; ``k < 0`` the reverse.
    """

    k: float = 0.0

    def matrices(self):
        return _quad_matrices(self.length, self.k)

    def split(self, n: int):
        return [Quadrupole(self.length / n, self.k)] * n


def fodo_cell(
    quad_length: float = 0.2,
    drift_length: float = 0.8,
    k: float = 6.0,
) -> list[Element]:
    """One symmetric FODO cell: QF/2 - O - QD - O - QF/2.

    Default parameters give a stable cell (phase advance below 90
    degrees) for the default beam of :mod:`repro.beams.simulation`.
    """
    half_f = Quadrupole(quad_length / 2.0, +k)
    half_d = Quadrupole(quad_length, -k)
    o = Drift(drift_length)
    return [half_f, o, half_d, o, Quadrupole(quad_length / 2.0, +k)]


def fodo_channel(n_cells: int, **kwargs) -> list[Element]:
    """A channel of ``n_cells`` consecutive FODO cells."""
    if n_cells < 1:
        raise ValueError("need at least one cell")
    out: list[Element] = []
    for _ in range(n_cells):
        out.extend(fodo_cell(**kwargs))
    return out


def channel_period(lattice) -> float:
    """Total path length of a lattice (sum of element lengths)."""
    return float(sum(e.length for e in lattice))


def one_turn_matrix(lattice) -> tuple[np.ndarray, np.ndarray]:
    """Accumulated (Mx, My) over a lattice; used to check stability:
    the channel is stable iff |trace| < 2 in both planes."""
    mx = np.eye(2)
    my = np.eye(2)
    for el in lattice:
        ex, ey = el.matrices()
        mx = ex @ mx
        my = ey @ my
    return mx, my
