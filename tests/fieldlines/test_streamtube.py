"""Streamtube baseline: geometry and the triangle-budget comparison."""

import numpy as np
import pytest

from repro.fieldlines.integrate import FieldLine
from repro.fieldlines.sos import build_strips
from repro.fieldlines.streamtube import build_tubes, render_tubes
from repro.render.camera import Camera


def _helix(n=30):
    t = np.linspace(0, 4 * np.pi, n)
    pts = np.column_stack([np.cos(t), np.sin(t), t / (4 * np.pi)])
    tangents = np.column_stack([-np.sin(t), np.cos(t), np.full(n, 1 / (4 * np.pi))])
    tangents /= np.linalg.norm(tangents, axis=1, keepdims=True)
    return FieldLine(points=pts, tangents=tangents, magnitudes=np.ones(n))


@pytest.fixture
def cam():
    return Camera(eye=[0, 0, 6.0], target=[0, 0, 0.5], width=96, height=96)


class TestTubeGeometry:
    def test_triangle_count(self):
        tube = build_tubes([_helix(30)], radius=0.05, n_sides=6)
        assert tube.n_triangles == 2 * 6 * (30 - 1)
        assert tube.n_vertices == 30 * 6

    def test_five_to_six_times_more_than_strips(self, cam):
        """The paper's headline geometry claim (section 3.1)."""
        lines = [_helix(25), _helix(40)]
        tubes = build_tubes(lines, n_sides=6)
        strips = build_strips(lines, cam, width=0.1)
        ratio = tubes.n_triangles / strips.n_triangles
        assert 5.0 <= ratio <= 6.0

    def test_vertices_at_radius(self):
        tube = build_tubes([_helix(20)], radius=0.07, n_sides=8)
        line = _helix(20)
        centers = np.repeat(line.points, 8, axis=0)
        d = np.linalg.norm(tube.vertices - centers, axis=1)
        assert np.allclose(d, 0.07, atol=1e-9)

    def test_normals_unit_radial(self):
        tube = build_tubes([_helix(20)], radius=0.05, n_sides=6)
        assert np.allclose(np.linalg.norm(tube.normals, axis=1), 1.0, atol=1e-9)

    def test_parallel_transport_no_twist(self):
        """Frames must rotate smoothly: consecutive ring vertices stay
        close (no sudden frame flips)."""
        tube = build_tubes([_helix(60)], radius=0.05, n_sides=6)
        rings = tube.vertices.reshape(60, 6, 3)
        jumps = np.linalg.norm(np.diff(rings[:, 0, :], axis=0), axis=1)
        assert jumps.max() < 3.0 * jumps.mean()

    def test_needs_three_sides(self):
        with pytest.raises(ValueError):
            build_tubes([_helix(5)], n_sides=2)

    def test_empty(self):
        tube = build_tubes([])
        assert tube.n_triangles == 0


class TestTubeRendering:
    def test_renders(self, cam):
        tube = build_tubes([_helix(40)], radius=0.08, n_sides=6)
        fb = render_tubes(cam, tube)
        assert (fb.to_rgb8().sum(axis=2) > 0).sum() > 100

    def test_empty_noop(self, cam):
        fb = render_tubes(cam, build_tubes([]))
        assert fb.to_rgb8().sum() == 0

    def test_visual_similar_to_strip(self, cam):
        """Strip and tube renderings of the same line must cover
        similar screen regions (the paper's 'similar visual effect')."""
        line = _helix(40)
        tube = build_tubes([line], radius=0.05, n_sides=6)
        strips = build_strips([line], cam, width=0.1)
        from repro.fieldlines.sos import render_strips

        img_t = render_tubes(cam, tube).to_rgb8().sum(axis=2) > 0
        img_s = render_strips(cam, strips, halo_core=None).to_rgb8().sum(axis=2) > 0
        overlap = (img_t & img_s).sum()
        union = (img_t | img_s).sum()
        assert overlap / union > 0.5
