"""Gaussian splatting: vectorized kernel correctness, batch/serial
bitwise equivalence, and the degenerate inputs (empty point sets,
zero-radius splats) that must render exactly like the no-points path."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.framebuffer import Framebuffer
from repro.render.points import gaussian_splat_fragments, point_fragments
from repro.render.scene import Scene
from repro.render.volume import render_mixed


@pytest.fixture
def camera():
    return Camera.fit_bounds([-1, -1, -1], [1, 1, 1], width=64, height=64)


@pytest.fixture
def cloud(rng):
    pos = rng.normal(0, 0.4, (300, 3))
    rgba = np.column_stack([rng.random((300, 3)), np.full(300, 0.6)])
    return pos, rgba


@pytest.fixture
def small_volume(rng):
    vol = rng.random((8, 8, 8, 4))
    vol[..., 3] *= 0.4
    return vol


class TestKernel:
    def test_weight_falls_off_from_center(self, camera):
        """A single centered splat: fragment alpha is maximal at the
        projected pixel and decreases monotonically with distance."""
        pix, dep, rgba = gaussian_splat_fragments(
            camera, np.zeros((1, 3)), np.array([1.0, 0.0, 0.0, 1.0]), 2.0
        )
        assert len(pix) > 1
        xy = np.column_stack([pix % camera.width, pix // camera.width])
        center = xy[np.argmax(rgba[:, 3])]
        d = np.hypot(*(xy - center).T)
        order = np.argsort(d, kind="stable")
        alphas = rgba[order, 3]
        dist = d[order]
        # alpha is non-increasing as distance grows (ties share alpha)
        for i in range(1, len(alphas)):
            if dist[i] > dist[i - 1]:
                assert alphas[i] <= alphas[i - 1] + 1e-12

    def test_footprint_bounded_by_truncate_and_max_radius(self, camera):
        pos = np.zeros((1, 3))
        rgba = np.array([1.0, 1.0, 1.0, 1.0])
        few = gaussian_splat_fragments(
            camera, pos, rgba, 5.0, truncate=1.0, min_weight=0.0
        )
        many = gaussian_splat_fragments(
            camera, pos, rgba, 5.0, truncate=3.0, min_weight=0.0
        )
        capped = gaussian_splat_fragments(
            camera, pos, rgba, 5.0, truncate=3.0, max_radius=2, min_weight=0.0
        )
        assert len(few[0]) < len(many[0])
        assert len(capped[0]) <= 25  # (2*2+1)^2

    def test_per_point_sigma(self, camera):
        pos = np.array([[-0.5, 0.0, 0.0], [0.5, 0.0, 0.0]])
        rgba = np.array([1.0, 1.0, 1.0, 1.0])
        pix, dep, col = gaussian_splat_fragments(
            camera, pos, rgba, np.array([0.5, 3.0])
        )
        # the wide splat contributes far more fragments; fragments stay
        # point-major so the split is a prefix/suffix
        assert len(pix) > 2
        by_depth = np.unique(dep, return_counts=True)[1]
        assert by_depth.min() < by_depth.max()

    def test_fragment_count_traced(self, camera, cloud):
        from repro.core.trace import capture

        pos, rgba = cloud
        with capture(enabled=True) as tracer:
            pix, _, _ = gaussian_splat_fragments(camera, pos, rgba, 1.5)
        counters = tracer.snapshot()["counters"]
        assert counters["splat_fragments"] == len(pix)


class TestDegenerateInputs:
    def test_empty_points_yield_empty_stream(self, camera):
        for fn in (point_fragments, gaussian_splat_fragments):
            pix, dep, rgba = fn(camera, np.empty((0, 3)), np.empty((0, 4)))
            assert pix.shape == (0,)
            assert dep.shape == (0,)
            assert rgba.shape == (0, 4)

    def test_zero_sigma_emits_nothing(self, camera, cloud):
        pos, rgba = cloud
        pix, dep, col = gaussian_splat_fragments(camera, pos, rgba, 0.0)
        assert len(pix) == 0

    def test_zero_sigma_renders_like_no_points(self, camera, cloud, small_volume):
        pos, rgba = cloud
        frags = gaussian_splat_fragments(camera, pos, rgba, 0.0)
        lo, hi = np.full(3, -1.0), np.full(3, 1.0)
        with_dead = render_mixed(
            camera, small_volume, lo, hi, point_fragments=frags,
            n_slices=12, cache=False,
        )
        without = render_mixed(
            camera, small_volume, lo, hi, n_slices=12, cache=False
        )
        assert np.array_equal(with_dead.rgba, without.rgba)
        assert np.array_equal(with_dead.depth, without.depth)

    def test_mixed_zero_sigma_matches_live_subset(self, camera, cloud):
        """Points with sigma <= 0 drop out exactly; the rest are
        bitwise-identical to splatting the live subset alone."""
        pos, rgba = cloud
        sig = np.full(len(pos), 1.5)
        sig[::3] = 0.0
        mixed = gaussian_splat_fragments(camera, pos, rgba, sig)
        live = sig > 0
        alone = gaussian_splat_fragments(
            camera, pos[live], rgba[live], sig[live]
        )
        assert np.array_equal(mixed[0], alone[0])
        assert np.array_equal(mixed[1], alone[1])
        assert np.array_equal(mixed[2], alone[2])


class TestBatchEquivalence:
    def test_batched_fragments_bitwise_equal(self, camera, cloud):
        pos, rgba = cloud
        sig = np.linspace(0.5, 2.5, len(pos))
        full = gaussian_splat_fragments(camera, pos, rgba, sig)
        for batch in (1, 7, 100, len(pos)):
            parts = [
                gaussian_splat_fragments(
                    camera, pos[a : a + batch], rgba[a : a + batch],
                    sig[a : a + batch],
                )
                for a in range(0, len(pos), batch)
            ]
            assert np.array_equal(full[0], np.concatenate([p[0] for p in parts]))
            assert np.array_equal(full[1], np.concatenate([p[1] for p in parts]))
            assert np.array_equal(full[2], np.concatenate([p[2] for p in parts]))

    def test_batched_render_bitwise_equal(self, camera, cloud, small_volume):
        pos, rgba = cloud
        lo, hi = np.full(3, -1.0), np.full(3, 1.0)
        full = gaussian_splat_fragments(camera, pos, rgba, 1.5)
        batches = [
            gaussian_splat_fragments(camera, pos[a : a + 50], rgba[a : a + 50], 1.5)
            for a in range(0, len(pos), 50)
        ]
        a = render_mixed(
            camera, small_volume, lo, hi, point_fragments=full,
            n_slices=12, cache=False,
        )
        b = render_mixed(
            camera, small_volume, lo, hi, point_fragments=batches,
            n_slices=12, cache=False,
        )
        assert np.array_equal(a.rgba, b.rgba)

    def test_empty_batches_interleaved(self, camera, cloud, small_volume):
        """Empty fragment batches anywhere in the list must not change
        the composite (the empty-shard regression)."""
        pos, rgba = cloud
        lo, hi = np.full(3, -1.0), np.full(3, 1.0)
        frags = gaussian_splat_fragments(camera, pos, rgba, 1.5)
        empty = gaussian_splat_fragments(
            camera, np.empty((0, 3)), np.empty((0, 4)), 1.5
        )
        a = render_mixed(
            camera, small_volume, lo, hi, point_fragments=[frags],
            n_slices=12, cache=False,
        )
        b = render_mixed(
            camera, small_volume, lo, hi,
            point_fragments=[empty, frags, empty],
            n_slices=12, cache=False,
        )
        assert np.array_equal(a.rgba, b.rgba)


class TestRendererTier:
    def test_splat_mode_differs_from_sprites(self, hybrid_frame):
        from repro.hybrid.renderer import HybridRenderer

        camera = Camera.fit_bounds(
            hybrid_frame.lo, hybrid_frame.hi, width=64, height=64
        )
        sprites = HybridRenderer(n_slices=12, cache=False).render(
            hybrid_frame, camera
        )
        splats = HybridRenderer(
            n_slices=12, cache=False, point_mode="splat"
        ).render(hybrid_frame, camera)
        assert np.all(np.isfinite(splats.rgba))
        assert not np.array_equal(sprites.rgba, splats.rgba)

    def test_batched_renderer_matches_unbatched(self, hybrid_frame):
        from repro.hybrid.renderer import HybridRenderer

        camera = Camera.fit_bounds(
            hybrid_frame.lo, hybrid_frame.hi, width=64, height=64
        )
        kw = dict(n_slices=12, cache=False, point_mode="splat", splat_scale=0.5)
        a = HybridRenderer(**kw).render(hybrid_frame, camera)
        b = HybridRenderer(**kw, point_batch_size=101).render(hybrid_frame, camera)
        assert np.array_equal(a.rgba, b.rgba)

    def test_invalid_parameters_rejected(self):
        from repro.hybrid.renderer import HybridRenderer

        with pytest.raises(ValueError, match="point_mode"):
            HybridRenderer(point_mode="blob")
        with pytest.raises(ValueError, match="splat_sigma"):
            HybridRenderer(splat_sigma=0.0)
        with pytest.raises(ValueError, match="splat_scale"):
            HybridRenderer(splat_scale=-1.0)
        with pytest.raises(ValueError, match="volume_mode"):
            HybridRenderer(volume_mode="amr-only")


class TestScene:
    def test_add_splats_composites(self, camera, cloud):
        pos, rgba = cloud
        scene = Scene(camera).add_splats(pos, rgba, sigma=1.5)
        assert scene.n_fragments > len(pos)  # footprints cover pixels
        fb = scene.render(n_slices=8)
        assert np.any(fb.rgba != 0.0)

    def test_add_splats_matches_manual_fragments(self, camera, cloud):
        pos, rgba = cloud
        fb_scene = Scene(camera).add_splats(pos, rgba, sigma=1.5).render(
            n_slices=8
        )
        frags = gaussian_splat_fragments(camera, pos, rgba, 1.5)
        fb_manual = render_mixed(
            camera, None, np.zeros(3), np.ones(3), point_fragments=frags,
            fb=Framebuffer(camera.width, camera.height), n_slices=8,
        )
        assert np.array_equal(fb_scene.rgba, fb_manual.rgba)
