"""Color palettes and 1-D lookup tables.

The viewer program in the paper maps point density through editable
transfer functions into color and opacity.  This module provides the
underlying palette machinery: a handful of built-in colormaps defined
by control points, linearly interpolated and sampled into lookup
tables, exactly like the palettized textures 2002-era hardware used.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Colormap", "get_colormap", "available_colormaps"]


class Colormap:
    """A piecewise-linear RGB colormap defined by control points.

    Parameters
    ----------
    positions : (K,) increasing values in [0, 1]
    colors : (K, 3) RGB at each control point, components in [0, 1]
    name : identifier used by :func:`get_colormap`
    """

    def __init__(self, positions, colors, name: str = "custom"):
        self.positions = np.asarray(positions, dtype=np.float64)
        self.colors = np.asarray(colors, dtype=np.float64)
        self.name = name
        if self.positions.ndim != 1 or self.colors.shape != (self.positions.size, 3):
            raise ValueError("positions must be (K,), colors (K, 3)")
        if np.any(np.diff(self.positions) < 0):
            raise ValueError("positions must be non-decreasing")
        if self.positions[0] != 0.0 or self.positions[-1] != 1.0:
            raise ValueError("positions must span [0, 1]")

    def __call__(self, t: np.ndarray) -> np.ndarray:
        """Sample the map at values ``t`` (clipped to [0, 1]); returns (..., 3)."""
        t = np.clip(np.asarray(t, dtype=np.float64), 0.0, 1.0)
        out = np.empty(t.shape + (3,))
        for c in range(3):
            out[..., c] = np.interp(t, self.positions, self.colors[:, c])
        return out

    def table(self, n: int = 256) -> np.ndarray:
        """Return an (n, 3) lookup table (the 'palette' of the paper)."""
        if n < 2:
            raise ValueError("table needs at least 2 entries")
        return self(np.linspace(0.0, 1.0, n))

    def reversed(self) -> "Colormap":
        return Colormap(1.0 - self.positions[::-1], self.colors[::-1], name=self.name + "_r")


_BUILTINS = {
    # dark-blue body through orange to white: good for beam density
    "fire": Colormap(
        [0.0, 0.25, 0.5, 0.75, 1.0],
        [
            [0.0, 0.0, 0.05],
            [0.35, 0.0, 0.35],
            [0.9, 0.25, 0.05],
            [1.0, 0.7, 0.1],
            [1.0, 1.0, 0.9],
        ],
        name="fire",
    ),
    # the blue electric-field-line look of the paper's figures
    "electric": Colormap(
        [0.0, 0.5, 1.0],
        [[0.05, 0.1, 0.4], [0.2, 0.45, 0.95], [0.8, 0.95, 1.0]],
        name="electric",
    ),
    "magnetic": Colormap(
        [0.0, 0.5, 1.0],
        [[0.3, 0.05, 0.05], [0.85, 0.25, 0.15], [1.0, 0.85, 0.6]],
        name="magnetic",
    ),
    "gray": Colormap([0.0, 1.0], [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]], name="gray"),
    "viridis_like": Colormap(
        [0.0, 0.33, 0.66, 1.0],
        [
            [0.27, 0.0, 0.33],
            [0.13, 0.44, 0.56],
            [0.21, 0.72, 0.47],
            [0.99, 0.91, 0.14],
        ],
        name="viridis_like",
    ),
}


def available_colormaps():
    """Names of the built-in colormaps."""
    return sorted(_BUILTINS)


def get_colormap(name: str) -> Colormap:
    """Look up a built-in colormap by name."""
    try:
        return _BUILTINS[name]
    except KeyError:
        raise KeyError(
            f"unknown colormap {name!r}; available: {', '.join(available_colormaps())}"
        ) from None
