"""Green's-function cache and grid-bounds hysteresis."""

import numpy as np
import pytest

from repro.beams.spacecharge import (
    SpaceChargeSolver,
    clear_green_cache,
    green_cache_stats,
    green_function_rfft,
    solve_poisson_open,
)
from repro.core.trace import capture

CELL = np.array([0.1, 0.1, 0.1])


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_green_cache()
    yield
    clear_green_cache()


class TestGreenCache:
    def test_hit_and_miss_counters(self, rng):
        rho = rng.random((8, 8, 8))
        with capture(enabled=True) as t:
            solve_poisson_open(rho, CELL)
            solve_poisson_open(rho, CELL)
        assert t.counters["green_cache_miss"] == 1
        assert t.counters["green_cache_hit"] == 1

    def test_cached_bit_identical_to_uncached(self, rng):
        rho = rng.random((8, 10, 6))
        warm1 = solve_poisson_open(rho, CELL, cached=True)
        warm2 = solve_poisson_open(rho, CELL, cached=True)
        cold = solve_poisson_open(rho, CELL, cached=False)
        assert np.array_equal(warm1, warm2)
        assert np.array_equal(warm1, cold)

    def test_distinct_cell_is_distinct_entry(self, rng):
        rho = rng.random((8, 8, 8))
        with capture(enabled=True) as t:
            solve_poisson_open(rho, CELL)
            solve_poisson_open(rho, 2.0 * CELL)
        assert t.counters["green_cache_miss"] == 2
        assert green_cache_stats()["entries"] == 2

    def test_spectrum_reused_by_identity(self):
        a = green_function_rfft((6, 6, 6), CELL)
        b = green_function_rfft((6, 6, 6), CELL)
        assert a is b

    def test_clear(self):
        green_function_rfft((6, 6, 6), CELL)
        assert green_cache_stats()["entries"] == 1
        clear_green_cache()
        assert green_cache_stats()["entries"] == 0


class TestBoundsHysteresis:
    def _particles(self, rng, n=400):
        particles = np.zeros((n, 6))
        particles[:, :3] = rng.standard_normal((n, 3))
        return particles

    def test_quiet_beam_reuses_bounds(self, rng):
        particles = self._particles(rng)
        solver = SpaceChargeSolver(grid_shape=(8, 8, 8), bounds_tolerance=0.05)
        with capture(enabled=True) as t:
            solver.field_at(particles)
            particles[:, :3] *= 1.001  # breathing well inside the band
            solver.field_at(particles)
        assert t.counters["sc_bounds_refit"] == 1
        assert t.counters["sc_bounds_reuse"] == 1

    def test_escaping_beam_refits(self, rng):
        particles = self._particles(rng)
        solver = SpaceChargeSolver(grid_shape=(8, 8, 8), bounds_tolerance=0.05)
        with capture(enabled=True) as t:
            solver.field_at(particles)
            particles[:, :3] *= 2.0  # blows past the padded bounds
            solver.field_at(particles)
        assert t.counters["sc_bounds_refit"] == 2
        assert t.counters.get("sc_bounds_reuse", 0) == 0

    def test_shrunken_beam_refits(self, rng):
        """A collapsing beam must not keep an oversized grid forever."""
        particles = self._particles(rng)
        solver = SpaceChargeSolver(grid_shape=(8, 8, 8), bounds_tolerance=0.05)
        with capture(enabled=True) as t:
            solver.field_at(particles)
            particles[:, :3] *= 0.25
            solver.field_at(particles)
        assert t.counters["sc_bounds_refit"] == 2

    def test_zero_tolerance_always_refits(self, rng):
        particles = self._particles(rng)
        solver = SpaceChargeSolver(grid_shape=(8, 8, 8), bounds_tolerance=0.0)
        with capture(enabled=True) as t:
            for _ in range(3):
                solver.field_at(particles)
        assert t.counters["sc_bounds_refit"] == 3
        assert t.counters.get("sc_bounds_reuse", 0) == 0

    def test_reused_bounds_keep_field_close(self, rng):
        """The hysteresis band changes the grid by at most ~tol, so the
        gathered field stays close to a fresh fit's."""
        particles = self._particles(rng)
        tol_solver = SpaceChargeSolver(grid_shape=(16, 16, 16), bounds_tolerance=0.05)
        fresh = SpaceChargeSolver(grid_shape=(16, 16, 16), bounds_tolerance=0.0)
        tol_solver.field_at(particles)
        drifted = particles.copy()
        drifted[:, :3] *= 0.999
        e_tol, _, _ = tol_solver.field_at(drifted)
        e_fresh, _, _ = fresh.field_at(drifted)
        scale = np.abs(e_fresh).max()
        assert np.abs(e_tol - e_fresh).max() < 0.05 * scale
