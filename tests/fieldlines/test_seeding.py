"""Density-proportional incremental seeding (paper section 3.2)."""

import numpy as np
import pytest

from repro.fieldlines.seeding import (
    OrderedFieldLines,
    desired_line_counts,
    seed_density_proportional,
)


class TestDesiredCounts:
    def test_sums_to_total(self, structure3, mode3):
        counts = desired_line_counts(structure3.mesh, "E", 200)
        assert counts.sum() == pytest.approx(200.0)

    def test_proportional_to_intensity_times_volume(self, structure3, mode3):
        counts = desired_line_counts(structure3.mesh, "E", 100)
        w = structure3.mesh.element_field_intensity(
            "E"
        ) * structure3.mesh.element_volumes()
        ratio = counts[w > 0] / w[w > 0]
        assert np.allclose(ratio, ratio[0])

    def test_zero_field_rejected(self, structure3):
        structure3.mesh.set_field("zero", np.zeros((structure3.mesh.n_vertices, 3)))
        with pytest.raises(ValueError, match="identically zero"):
            desired_line_counts(structure3.mesh, "zero", 10)


class TestSeeding:
    def test_order_assigned_sequentially(self, ordered_lines):
        assert [line.order for line in ordered_lines.lines] == list(
            range(len(ordered_lines))
        )

    def test_prefix_superset_property(self, ordered_lines):
        """Each frame's line set is a superset of the previous one."""
        p10 = ordered_lines.prefix(10)
        p25 = ordered_lines.prefix(25)
        assert p25[:10] == p10

    def test_prefix_bounds(self, ordered_lines):
        assert ordered_lines.prefix(0) == []
        assert len(ordered_lines.prefix(10**6)) == len(ordered_lines)
        assert ordered_lines.prefix(-5) == []

    def test_first_line_from_neediest_element(self, structure3, e_sampler):
        """Line 0 must start where intensity x volume peaks."""
        seeded = seed_density_proportional(
            structure3.mesh, e_sampler, total_lines=1, field_name="E",
            rng=np.random.default_rng(0),
        )
        neediest = int(np.argmax(seeded.desired))
        corners = structure3.mesh.vertices[structure3.mesh.hexes[neediest]]
        lo = corners.min(axis=0) - 1e-9
        hi = corners.max(axis=0) + 1e-9
        # the first point of the backward half is the seed's trace; at
        # least one line vertex must be inside the neediest element
        pts = seeded.lines[0].points
        inside = np.all((pts >= lo) & (pts <= hi), axis=1)
        assert inside.any()

    def test_early_lines_in_stronger_field(self, ordered_lines):
        """Greedy order loads strong-field lines first (Figure 7)."""
        mags = np.array([l.mean_magnitude() for l in ordered_lines.lines])
        k = len(mags) // 3
        assert mags[:k].mean() > mags[-k:].mean()

    def test_achieved_counts_consistent(self, ordered_lines, structure3):
        from repro.fieldlines.incremental import element_line_counts

        recount = element_line_counts(structure3.mesh, ordered_lines.lines)
        assert np.allclose(recount, ordered_lines.achieved)

    def test_reproducible_with_rng(self, structure3, e_sampler):
        a = seed_density_proportional(
            structure3.mesh, e_sampler, total_lines=5,
            rng=np.random.default_rng(11),
        )
        b = seed_density_proportional(
            structure3.mesh, e_sampler, total_lines=5,
            rng=np.random.default_rng(11),
        )
        for la, lb in zip(a.lines, b.lines):
            assert np.array_equal(la.points, lb.points)

    def test_on_line_callback(self, structure3, e_sampler):
        seen = []
        seed_density_proportional(
            structure3.mesh, e_sampler, total_lines=4,
            on_line=lambda i, l: seen.append(i),
            rng=np.random.default_rng(0),
        )
        assert seen == [0, 1, 2, 3]

    def test_total_points_accounting(self, ordered_lines):
        assert ordered_lines.total_points() == sum(
            l.n_points for l in ordered_lines.lines
        )

    def test_magnitude_range(self, ordered_lines):
        lo, hi = ordered_lines.magnitude_range()
        assert 0 <= lo <= hi


class TestOrderedContainer:
    def test_empty(self):
        o = OrderedFieldLines(
            lines=[], desired=np.zeros(3), achieved=np.zeros(3)
        )
        assert len(o) == 0
        assert o.magnitude_range() == (0.0, 0.0)
        assert o.total_points() == 0
