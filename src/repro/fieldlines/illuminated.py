"""Line-primitive baselines: flat lines and illuminated lines.

Paper Figure 6 (a) is "conventional line drawing" -- constant-color
1-pixel line segments; Figure 6 (b) is the "illuminated streamline
technique" of Stalling, Zoeckler & Hege [13] -- the same segments lit
through the tangent-based maximum-principle model.  Both share this
rasterization path: each polyline segment is sampled at pixel rate and
splatted as depth-tested fragments.
"""

from __future__ import annotations

import numpy as np

from repro.render.camera import Camera
from repro.render.colormap import Colormap, get_colormap
from repro.render.framebuffer import Framebuffer, composite_fragments
from repro.render.shading import line_illumination

__all__ = ["line_fragments", "render_lines"]


def line_fragments(camera: Camera, lines, max_samples_per_segment: int = 64):
    """Sample polylines at ~pixel rate into a fragment stream.

    Returns (pix, depth, tangent (F, 3), mag (F,), line_id (F,)).
    """
    pix_all, dep_all, tan_all, mag_all, id_all = [], [], [], [], []
    w, h = camera.width, camera.height
    for li, line in enumerate(lines):
        pts = line.points
        if len(pts) < 2:
            continue
        xy, depth, visible = camera.project(pts)
        a_xy, b_xy = xy[:-1], xy[1:]
        a_d, b_d = depth[:-1], depth[1:]
        seg_ok = visible[:-1] & visible[1:]
        if not seg_ok.any():
            continue
        lengths = np.linalg.norm(b_xy - a_xy, axis=1)
        n_samples = np.clip(np.ceil(lengths).astype(int) + 1, 2, max_samples_per_segment)
        for s in np.flatnonzero(seg_ok):
            ts = np.linspace(0.0, 1.0, n_samples[s])
            sxy = a_xy[s] + (b_xy[s] - a_xy[s]) * ts[:, None]
            sd = a_d[s] + (b_d[s] - a_d[s]) * ts
            ix = np.floor(sxy[:, 0]).astype(np.int64)
            iy = np.floor(sxy[:, 1]).astype(np.int64)
            ok = (ix >= 0) & (ix < w) & (iy >= 0) & (iy < h)
            if not ok.any():
                continue
            pix_all.append(iy[ok] * w + ix[ok])
            dep_all.append(sd[ok])
            tangent = line.tangents[s] + ts[ok, None] * (
                line.tangents[s + 1] - line.tangents[s]
            )
            tan_all.append(tangent)
            mag = line.magnitudes[s] + ts[ok] * (
                line.magnitudes[s + 1] - line.magnitudes[s]
            )
            mag_all.append(mag)
            id_all.append(np.full(ok.sum(), li))
    if not pix_all:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0),
            np.empty((0, 3)),
            np.empty(0),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.concatenate(pix_all),
        np.concatenate(dep_all),
        np.vstack(tan_all),
        np.concatenate(mag_all),
        np.concatenate(id_all),
    )


def render_lines(
    camera: Camera,
    lines,
    colormap: Colormap | str = "electric",
    fb: Framebuffer | None = None,
    illuminated: bool = True,
    alpha: float = 1.0,
    halo: bool = False,
    halo_pixels: int = 1,
    magnitude_range=None,
) -> Framebuffer:
    """Render lines as 1-pixel primitives.

    ``illuminated=False`` gives the flat "conventional line drawing";
    ``halo=True`` underlays each line with a black border ``halo_pixels``
    wide (the haloed-lines technique the paper compares against).
    """
    if fb is None:
        fb = Framebuffer(camera.width, camera.height)
    pix, dep, tan, mag, _ = line_fragments(camera, lines)
    if len(pix) == 0:
        return fb
    cmap = get_colormap(colormap) if isinstance(colormap, str) else colormap
    if magnitude_range is None:
        lo, hi = float(mag.min()), float(mag.max())
    else:
        lo, hi = magnitude_range
    t = np.clip((mag - lo) / max(hi - lo, 1e-300), 0.0, 1.0)
    base_rgb = cmap(t)
    if illuminated:
        headlight = -camera.forward
        rgb = line_illumination(tan, headlight, headlight, base_rgb)
    else:
        rgb = base_rgb

    if halo:
        # black fragments one pixel around, pushed slightly back in depth
        w = camera.width
        offsets = []
        r = int(halo_pixels)
        for dx in range(-r, r + 1):
            for dy in range(-r, r + 1):
                if dx or dy:
                    offsets.append(dy * w + dx)
        halo_pix = np.concatenate([pix + o for o in offsets])
        valid = (halo_pix >= 0) & (halo_pix < fb.n_pixels)
        halo_pix = halo_pix[valid]
        halo_dep = np.tile(dep, len(offsets))[valid] * 1.0005
        halo_rgba = np.zeros((len(halo_pix), 4))
        halo_rgba[:, 3] = 1.0
        pix = np.concatenate([pix, halo_pix])
        dep = np.concatenate([dep, halo_dep])
        rgba = np.vstack(
            [np.column_stack([rgb, np.full(len(rgb), alpha)]), halo_rgba]
        )
    else:
        rgba = np.column_stack([rgb, np.full(len(rgb), alpha)])

    layer, depth = composite_fragments(pix, dep, rgba, fb.n_pixels)
    fb.layer_over(
        layer.reshape(fb.height, fb.width, 4), depth.reshape(fb.height, fb.width)
    )
    return fb
