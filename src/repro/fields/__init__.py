"""Electromagnetic field substrate.

Stands in for the parallel time-domain electromagnetic field solver
(Tau3P, paper ref [16]) that "models the reflection and transmission
properties of open structures in an accelerator design" on
"unstructured hexahedral meshes".

We provide:

- hexahedral meshes of multi-cell linear accelerator structures
  (3-cell and 12-cell, with input/output ports),
- analytic pillbox cavity eigenmodes for validation and fast data
  generation,
- an explicit leapfrog (Yee) time-domain solver whose step size obeys
  the Courant condition -- the reason "simulating 100 nanoseconds in
  the real world requires millions of time steps",
- vectorized field sampling used by the field-line tracer.

Modules
-------
mesh       hexahedral mesh container, volumes, trilinear sampling
geometry   3-cell / 12-cell accelerator structure generators
modes      analytic pillbox TM modes
solver     Courant-limited time-domain solver with port excitation
sampling   vectorized E/B evaluation at arbitrary points
"""

from repro.fields.mesh import HexMesh, StructuredHexMesh
from repro.fields.geometry import (
    AcceleratorStructure,
    make_pillbox,
    make_multicell_structure,
)
from repro.fields.modes import pillbox_tm010, multicell_standing_wave
from repro.fields.solver import TimeDomainSolver, courant_dt
from repro.fields.sampling import YeeSampler, AnalyticSampler
from repro.fields.eigen import ResonanceFinder
from repro.fields.ports import PowerMonitor, transmission

__all__ = [
    "HexMesh",
    "StructuredHexMesh",
    "AcceleratorStructure",
    "make_pillbox",
    "make_multicell_structure",
    "pillbox_tm010",
    "multicell_standing_wave",
    "TimeDomainSolver",
    "courant_dt",
    "YeeSampler",
    "AnalyticSampler",
    "ResonanceFinder",
    "PowerMonitor",
    "transmission",
]
