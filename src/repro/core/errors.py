"""Typed failure vocabulary shared by every process/socket boundary.

The robustness layer (remote link, on-disk formats, parallel
executors, checkpointing) communicates failure through these exception
types instead of whatever the stdlib or numpy happened to raise, so
callers -- and the CLI's exit-code mapping -- can tell *what kind* of
thing went wrong:

- :class:`FormatError` -- an on-disk artifact is truncated, corrupted,
  or of the wrong kind/version.  Subclasses :class:`ValueError` so
  pre-existing ``except ValueError`` call sites keep working.
- :class:`ProtocolError` -- the wire stream of the remote link is
  damaged (bad magic, unsupported version, checksum mismatch,
  mid-message truncation).  :class:`TruncatedMessageError` also
  subclasses :class:`ConnectionError` because a peer closing
  mid-message *is* a connection failure.
- :class:`RemoteError` -- the server answered with an application
  ERROR message (request was delivered intact; retrying is pointless).
- :class:`ServiceBusyError` -- the multi-tenant service shed the
  request or session under load (a typed BUSY reply); carries the
  server-suggested ``retry_after`` delay, which the client's backoff
  honors.  Retrying *is* the right response, after waiting.
- :class:`RetryExhaustedError` -- the client's bounded retry loop gave
  up; carries the last underlying error as ``__cause__``.
- :class:`SimulatedCrash` -- raised only by the fault-injection layer
  (:mod:`repro.core.faults`) to emulate a process killed mid-write;
  deliberately *not* caught by any resilience code.

Only stdlib is used; this module imports nothing else from
:mod:`repro` and can be imported from anywhere without cycles.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormatError",
    "ProtocolError",
    "BadMagicError",
    "BadVersionError",
    "ChecksumError",
    "MessageTooLargeError",
    "TruncatedMessageError",
    "RemoteError",
    "ServiceBusyError",
    "RetryExhaustedError",
    "SimulatedCrash",
]


class ReproError(Exception):
    """Base class of every typed error the package raises on purpose."""


class FormatError(ReproError, ValueError):
    """An on-disk artifact is damaged, truncated, or the wrong kind."""


class ProtocolError(ReproError):
    """The remote link's wire stream is damaged or out of spec."""


class BadMagicError(ProtocolError):
    """Frame header does not start with the protocol magic (desync)."""


class BadVersionError(ProtocolError):
    """Peer speaks an unsupported protocol version."""


class ChecksumError(ProtocolError):
    """Payload CRC32 does not match the header (corrupted in flight)."""


class MessageTooLargeError(ProtocolError):
    """Declared payload length exceeds the protocol maximum."""


class TruncatedMessageError(ProtocolError, ConnectionError):
    """Peer closed the connection in the middle of a framed message."""


class RemoteError(ReproError, RuntimeError):
    """The server replied with an application-level ERROR message."""


class ServiceBusyError(ReproError, RuntimeError):
    """The service shed this request or session under load.

    ``retry_after`` is the server's suggested wait (seconds) before
    trying again; the client's retry loop sleeps at least that long.
    """

    def __init__(self, message: str = "service busy", retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class RetryExhaustedError(ReproError, RuntimeError):
    """A bounded retry loop ran out of attempts; see ``__cause__``."""


class SimulatedCrash(ReproError):
    """An injected process-kill (fault injection only; never caught by
    resilience code -- it must propagate like a real kill)."""
