"""Plot-type conversion of partitioned data (paper section 2.3).

"Since the partitioned representation contains all the data present
in the original representation, it is possible (although not yet
implemented) to discard the original data and convert between
different plot type partitionings."

This module implements that conversion: a partitioned frame carries
all six phase-space coordinates of every particle, so re-partitioning
to a different plot type never needs the original frame files.  The
result is bit-identical (up to particle order within equal-density
groups) to partitioning the original data directly.
"""

from __future__ import annotations

from repro.core.dataset import as_dataset
from repro.octree.partition import PartitionedFrame, partition

__all__ = ["repartition"]


def repartition(
    frame: PartitionedFrame,
    plot_type: str,
    max_level: int | None = None,
    capacity: int | None = None,
) -> PartitionedFrame:
    """Re-partition an existing partitioned frame to a new plot type.

    Parameters
    ----------
    frame : the existing partitioned frame (any plot type)
    plot_type : the target plot type ('xyz', 'xpxy', 'xpxz', 'pxpypz')
    max_level, capacity : octree build parameters; default to the
        source frame's

    Returns
    -------
    A new :class:`PartitionedFrame` over the requested coordinates.
    The source frame is untouched; the original raw data is never
    needed ("discard the original data").
    """
    return partition(
        as_dataset(frame.particles),
        plot_type,
        max_level=frame.max_level if max_level is None else max_level,
        capacity=frame.capacity if capacity is None else capacity,
        step=frame.step,
    )
