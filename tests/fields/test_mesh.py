"""Hexahedral mesh: volumes, fields, point location, sampling."""

import numpy as np
import pytest

from repro.fields.mesh import HexMesh, StructuredHexMesh


def _unit_cube_mesh(n=2):
    g = np.linspace(0.0, 1.0, n + 1)
    gx, gy, gz = np.meshgrid(g, g, g, indexing="ij")
    grid = np.stack([gx, gy, gz], axis=-1)
    return StructuredHexMesh(grid)


class TestConstruction:
    def test_counts(self):
        m = _unit_cube_mesh(3)
        assert m.n_vertices == 4**3
        assert m.n_elements == 27
        assert m.grid_shape == (3, 3, 3)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            HexMesh(np.zeros((4, 2)), np.zeros((1, 8), dtype=int))
        with pytest.raises(ValueError):
            HexMesh(np.zeros((4, 3)), np.zeros((1, 6), dtype=int))
        with pytest.raises(ValueError):
            HexMesh(np.zeros((4, 3)), np.full((1, 8), 99))

    def test_structured_needs_4d(self):
        with pytest.raises(ValueError):
            StructuredHexMesh(np.zeros((3, 3, 3)))


class TestVolumes:
    def test_unit_cube_volume(self):
        m = _unit_cube_mesh(2)
        vols = m.element_volumes()
        assert np.allclose(vols, 1.0 / 8.0)
        assert vols.sum() == pytest.approx(1.0)

    def test_stretched_grid(self):
        g = np.linspace(0.0, 2.0, 3)
        h = np.linspace(0.0, 1.0, 3)
        gx, gy, gz = np.meshgrid(g, h, h, indexing="ij")
        m = StructuredHexMesh(np.stack([gx, gy, gz], axis=-1))
        assert m.element_volumes().sum() == pytest.approx(2.0)

    def test_distorted_hex_positive(self, rng):
        g = np.linspace(0.0, 1.0, 4)
        gx, gy, gz = np.meshgrid(g, g, g, indexing="ij")
        grid = np.stack([gx, gy, gz], axis=-1)
        grid[1:-1, 1:-1, 1:-1] += rng.uniform(-0.05, 0.05, grid[1:-1, 1:-1, 1:-1].shape)
        m = StructuredHexMesh(grid)
        vols = m.element_volumes()
        assert np.all(vols > 0)
        assert vols.sum() == pytest.approx(1.0, rel=1e-9)  # interior jiggle conserves volume

    def test_centers_inside_bounds(self):
        m = _unit_cube_mesh(3)
        c = m.element_centers()
        assert np.all(c > 0) and np.all(c < 1)


class TestFields:
    def test_set_and_intensity(self):
        m = _unit_cube_mesh(2)
        f = np.zeros((m.n_vertices, 3))
        f[:, 0] = 2.0
        m.set_field("E", f)
        assert np.allclose(m.element_field_intensity("E"), 2.0)

    def test_scalar_field_intensity(self):
        m = _unit_cube_mesh(2)
        m.set_field("s", np.full(m.n_vertices, -3.0))
        assert np.allclose(m.element_field_intensity("s"), 3.0)

    def test_wrong_length_rejected(self):
        m = _unit_cube_mesh(2)
        with pytest.raises(ValueError):
            m.set_field("E", np.zeros((5, 3)))

    def test_field_nbytes(self):
        m = _unit_cube_mesh(2)
        m.set_field("E", np.zeros((m.n_vertices, 3)))
        m.set_field("B", np.zeros((m.n_vertices, 3)))
        assert m.field_nbytes("E") == m.n_vertices * 24
        assert m.field_nbytes() == m.n_vertices * 48


class TestLocate:
    def test_points_found_in_right_elements(self):
        m = _unit_cube_mesh(2)
        pts = np.array([[0.25, 0.25, 0.25], [0.75, 0.75, 0.75]])
        el, ref = m.locate(pts)
        assert el[0] == m.element_index(0, 0, 0)
        assert el[1] == m.element_index(1, 1, 1)
        assert np.allclose(ref, 0.5, atol=1e-6)

    def test_outside_returns_minus_one(self):
        m = _unit_cube_mesh(2)
        el, _ = m.locate(np.array([[2.0, 2.0, 2.0]]))
        assert el[0] == -1

    def test_sample_linear_field_exact(self, rng):
        """Trilinear sampling reproduces a linear function exactly."""
        m = _unit_cube_mesh(3)
        vals = 2.0 * m.vertices[:, 0] - m.vertices[:, 1] + 0.5 * m.vertices[:, 2]
        m.set_field("f", vals)
        pts = rng.uniform(0.05, 0.95, (50, 3))
        out = m.sample_field("f", pts)
        expected = 2.0 * pts[:, 0] - pts[:, 1] + 0.5 * pts[:, 2]
        assert np.allclose(out, expected, atol=1e-6)

    def test_sample_vector_field_shape(self, rng):
        m = _unit_cube_mesh(2)
        m.set_field("E", rng.standard_normal((m.n_vertices, 3)))
        out = m.sample_field("E", rng.uniform(0.1, 0.9, (10, 3)))
        assert out.shape == (10, 3)

    def test_sample_outside_zero(self):
        m = _unit_cube_mesh(2)
        m.set_field("f", np.ones(m.n_vertices))
        out = m.sample_field("f", np.array([[5.0, 5.0, 5.0]]))
        assert out[0] == 0.0


class TestElementIndex:
    def test_flat_index_roundtrip(self):
        m = _unit_cube_mesh(3)
        assert m.element_index(0, 0, 0) == 0
        assert m.element_index(2, 2, 2) == 26
        # center of element (i, j, k) matches the element's position
        e = m.element_index(1, 0, 2)
        center = m.element_centers()[e]
        assert np.allclose(center, [0.5, 1 / 6, 5 / 6], atol=1e-9)
