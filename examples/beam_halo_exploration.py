"""Beam halo exploration -- the paper's section 2 workflow, end to end.

A mismatched intense beam develops a halo thousands of times less
dense than its core.  This example:

1. runs the beam and watches the halo parameter grow,
2. partitions each kept frame (the one-time supercomputer pass),
3. sweeps the extraction threshold to show the size/accuracy dial,
4. steps through frames with the byte-budgeted viewer, and
5. edits the linked transfer functions to move the point/volume
   boundary interactively -- all renders go to examples/output/.

    python examples/beam_halo_exploration.py
"""

import time
from pathlib import Path

import numpy as np

from repro.beams.diagnostics import halo_parameter, rms_size
from repro.beams.simulation import BeamConfig, BeamSimulation
from repro.core.dataset import as_dataset
from repro.hybrid.renderer import HybridRenderer
from repro.hybrid.transfer import LinkedTransferFunctions
from repro.hybrid.viewer import FrameViewer
from repro.octree.extraction import extract, extraction_sizes
from repro.octree.partition import partition
from repro.render.camera import Camera
from repro.render.image import write_ppm

OUT = Path(__file__).parent / "output"
OUT.mkdir(exist_ok=True)
HYBRID_DIR = OUT / "halo_frames"
HYBRID_DIR.mkdir(exist_ok=True)


def main() -> None:
    # ---- 1. simulate, tracking halo growth ---------------------------
    sim = BeamSimulation(
        BeamConfig(n_particles=50_000, n_cells=10, mismatch=1.6, seed=9)
    )
    partitioned = []

    def keep(step, particles):
        h = halo_parameter(particles)
        r = rms_size(particles, 0)
        print(f"  step {step:3d}: rms_x={r:6.3f}  halo_param={h:+.3f}")
        partitioned.append(
            partition(as_dataset(particles), "xyz", max_level=6, capacity=48, step=step)
        )

    print("simulating (halo parameter should climb)...")
    sim.run(on_frame=keep, frame_every=10)

    # ---- 2. the size/accuracy dial ------------------------------------
    pf = partitioned[-1]
    print("\nextraction threshold sweep (the paper's size/accuracy dial):")
    percentiles = [20, 50, 80]
    thresholds = [float(np.percentile(pf.nodes["density"], p)) for p in percentiles]
    for p, row in zip(percentiles, extraction_sizes(pf, thresholds)):
        print(
            f"  p{p}: {row['n_points']:6d} explicit halo points, "
            f"{row['total_bytes'] / 1e6:5.2f} MB hybrid"
        )

    # ---- 3. extract every frame at a fixed threshold ------------------
    threshold = thresholds[1]
    for i, frame in enumerate(partitioned):
        h = extract(frame, threshold, volume_resolution=32)
        h.save(HYBRID_DIR / f"frame_{i:04d}.hybrid")

    # ---- 4. step through frames with a memory budget ------------------
    renderer = HybridRenderer(n_slices=32)
    viewer = FrameViewer(
        HYBRID_DIR, memory_budget_bytes=3 * 1024 * 1024, renderer=renderer
    )
    first = viewer.frame(0)
    cam = Camera.fit_bounds(first.lo, first.hi, width=256, height=256)
    print(f"\nstepping through {len(viewer)} frames (3 MB cache):")
    t0 = time.perf_counter()
    for i in range(len(viewer)):
        img = viewer.render_current(cam).to_rgb8()
        write_ppm(OUT / f"halo_view_{i:04d}.ppm", img)
        viewer.step_forward()
    print(
        f"  {len(viewer)} renders in {time.perf_counter() - t0:.1f} s; "
        f"cache: {viewer.stats['hits']} hits / {viewer.stats['misses']} misses "
        f"/ {viewer.stats['evictions']} evictions"
    )

    # ---- 5. move the linked point/volume boundary ---------------------
    print("\nediting the linked transfer functions (Figure 3):")
    last = viewer.goto(len(viewer) - 1)
    for boundary in (0.2, 0.45, 0.7):
        tf = LinkedTransferFunctions(boundary=boundary, ramp=0.1)
        assert tf.is_inverse_pair()
        r = HybridRenderer(transfer=tf, n_slices=32)
        img = r.render(last, cam).to_rgb8()
        write_ppm(OUT / f"halo_boundary_{int(boundary * 100):02d}.ppm", img)
        pos, _ = r.classified_points(last)
        print(
            f"  boundary {boundary:.2f}: {len(pos):6d} points drawn "
            "(volume takes over the rest)"
        )
    print(f"\nimages in {OUT}/")


if __name__ == "__main__":
    main()
