"""HybridFrame container and serialization."""

import numpy as np
import pytest

from repro.hybrid.representation import HybridFrame


def _frame(n_points=100, res=8, seed=0):
    rng = np.random.default_rng(seed)
    return HybridFrame(
        volume=rng.random((res, res, res)).astype(np.float32),
        points=rng.random((n_points, 3)).astype(np.float32),
        point_densities=rng.random(n_points).astype(np.float32),
        lo=np.array([-1.0, -1.0, -1.0]),
        hi=np.array([1.0, 1.0, 1.0]),
        threshold=0.5,
        step=7,
        plot_type="xpxy",
    )


class TestContainer:
    def test_basic_properties(self):
        f = _frame()
        assert f.n_points == 100
        assert f.resolution == (8, 8, 8)
        assert f.nbytes() == 8**3 * 4 + 100 * 12 + 100 * 4

    def test_empty_points(self):
        f = HybridFrame(
            volume=np.zeros((4, 4, 4), dtype=np.float32),
            points=np.empty((0, 3)),
            point_densities=np.empty(0),
            lo=np.zeros(3),
            hi=np.ones(3),
        )
        assert f.n_points == 0
        assert f.max_density() == 0.0

    def test_max_density_covers_both(self):
        f = _frame()
        f.volume[0, 0, 0] = 99.0
        assert f.max_density() == pytest.approx(99.0)
        f.point_densities[0] = 200.0
        assert f.max_density() == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridFrame(
                volume=np.zeros((4, 4)),  # not 3-D
                points=np.zeros((1, 3)),
                point_densities=np.zeros(1),
                lo=np.zeros(3),
                hi=np.ones(3),
            )
        with pytest.raises(ValueError):
            HybridFrame(
                volume=np.zeros((4, 4, 4)),
                points=np.zeros((5, 3)),
                point_densities=np.zeros(3),  # length mismatch
                lo=np.zeros(3),
                hi=np.ones(3),
            )


class TestSerialization:
    def test_bytes_roundtrip(self):
        f = _frame()
        back = HybridFrame.from_bytes(f.to_bytes())
        assert np.array_equal(back.volume, f.volume)
        assert np.array_equal(back.points, f.points)
        assert np.array_equal(back.point_densities, f.point_densities)
        assert back.plot_type == "xpxy"
        assert back.step == 7
        assert back.threshold == 0.5
        assert np.allclose(back.lo, f.lo)
        assert np.allclose(back.hi, f.hi)

    def test_file_roundtrip(self, tmp_path):
        f = _frame(n_points=37, res=6, seed=3)
        path = tmp_path / "x.hybrid"
        nbytes = f.save(path)
        assert path.stat().st_size == nbytes
        back = HybridFrame.load(path)
        assert np.array_equal(back.points, f.points)

    def test_zero_point_roundtrip(self, tmp_path):
        f = HybridFrame(
            volume=np.ones((4, 4, 4), dtype=np.float32),
            points=np.empty((0, 3)),
            point_densities=np.empty(0),
            lo=np.zeros(3),
            hi=np.ones(3),
        )
        path = tmp_path / "z.hybrid"
        f.save(path)
        back = HybridFrame.load(path)
        assert back.n_points == 0
        assert np.array_equal(back.volume, f.volume)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.hybrid"
        p.write_bytes(b"XXXXXXXX" + bytes(128))
        with pytest.raises(ValueError, match="not a hybrid frame"):
            HybridFrame.load(p)

    def test_anisotropic_volume(self):
        f = HybridFrame(
            volume=np.zeros((4, 8, 16), dtype=np.float32),
            points=np.zeros((1, 3)),
            point_densities=np.zeros(1),
            lo=np.zeros(3),
            hi=np.ones(3),
        )
        back = HybridFrame.from_bytes(f.to_bytes())
        assert back.resolution == (4, 8, 16)
