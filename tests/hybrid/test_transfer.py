"""Linked transfer functions: the inverse pair of paper section 2.4."""

import numpy as np
import pytest

from repro.hybrid.transfer import (
    DensityNormalizer,
    LinkedTransferFunctions,
    PointTransferFunction,
    VolumeTransferFunction,
)

T = np.linspace(0.0, 1.0, 257)


class TestDensityNormalizer:
    def test_range(self):
        n = DensityNormalizer(100.0)
        out = n(np.array([0.0, 1.0, 50.0, 100.0, 500.0]))
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out[0] == 0.0
        assert out[3] == pytest.approx(1.0)
        assert out[4] == pytest.approx(1.0)  # clipped

    def test_monotone(self):
        n = DensityNormalizer(10.0, mode="log")
        d = np.linspace(0, 10, 100)
        assert np.all(np.diff(n(d)) >= 0)

    def test_log_expands_low_densities(self):
        """The log mode gives the faint halo usable dynamic range."""
        lin = DensityNormalizer(1000.0, mode="linear")
        log = DensityNormalizer(1000.0, mode="log")
        assert log(1.0) > 10 * lin(1.0)

    def test_inverse_roundtrip(self):
        for mode in ("log", "linear"):
            n = DensityNormalizer(42.0, mode=mode)
            d = np.linspace(0.0, 42.0, 50)
            assert np.allclose(n.inverse(n(d)), d, rtol=1e-9, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DensityNormalizer(0.0)
        with pytest.raises(ValueError):
            DensityNormalizer(1.0, mode="sqrt")


class TestVolumeTransferFunction:
    def test_step_shape(self):
        tf = VolumeTransferFunction(boundary=0.5, ramp=0.0, opacity=0.1)
        rgba = tf(np.array([0.2, 0.8]))
        assert rgba[0, 3] == 0.0
        assert rgba[1, 3] == pytest.approx(0.1)

    def test_ramp_transitions(self):
        tf = VolumeTransferFunction(boundary=0.5, ramp=0.2, opacity=0.1)
        rgba = tf(np.array([0.5]))
        assert 0.0 < rgba[0, 3] < 0.1
        assert rgba[0, 3] == pytest.approx(0.05)

    def test_color_from_colormap(self):
        tf = VolumeTransferFunction(colormap="gray")
        rgba = tf(np.array([0.0, 1.0]))
        assert np.allclose(rgba[0, :3], 0.0)
        assert np.allclose(rgba[1, :3], 1.0)


class TestPointTransferFunction:
    def test_full_below_none_above(self):
        tf = PointTransferFunction(boundary=0.4, ramp=0.0)
        f = tf(np.array([0.1, 0.9]))
        assert f[0] == 1.0
        assert f[1] == 0.0

    def test_intermediate_fraction(self):
        tf = PointTransferFunction(boundary=0.5, ramp=0.2)
        assert 0.0 < tf(np.array([0.5]))[0] < 1.0


class TestLinkedPair:
    def test_inverse_identity(self):
        """point(t) + volume_weight(t) == 1 everywhere, the paper's
        'inverses of each other'."""
        pair = LinkedTransferFunctions(boundary=0.35, ramp=0.15)
        assert pair.is_inverse_pair()
        assert np.allclose(pair.point(T) + pair.volume.weight(T), 1.0)

    def test_linked_edit_moves_both(self):
        pair = LinkedTransferFunctions(boundary=0.3)
        pair.set_boundary(0.6, side="volume")
        assert pair.volume.boundary == 0.6
        assert pair.point.boundary == 0.6
        assert pair.is_inverse_pair()

    def test_linked_edit_from_point_side(self):
        pair = LinkedTransferFunctions(boundary=0.3)
        pair.set_boundary(0.7, side="point")
        assert pair.volume.boundary == 0.7

    def test_unlinked_edit_separates(self):
        """The paper also allows editing the two separately."""
        pair = LinkedTransferFunctions(boundary=0.3, linked=False)
        pair.set_boundary(0.8, side="volume")
        assert pair.volume.boundary == 0.8
        assert pair.point.boundary == 0.3
        assert not pair.is_inverse_pair()

    def test_ramp_edit(self):
        pair = LinkedTransferFunctions(ramp=0.1)
        pair.set_ramp(0.3)
        assert pair.volume.ramp == 0.3
        assert pair.point.ramp == 0.3
        assert pair.is_inverse_pair()

    def test_bad_side(self):
        pair = LinkedTransferFunctions()
        with pytest.raises(ValueError):
            pair.set_boundary(0.5, side="middle")

    def test_overlap_region_exists_with_ramp(self):
        """With a ramp, a density band is both point- and volume-
        rendered (regions can overlap, Figure 3)."""
        pair = LinkedTransferFunctions(boundary=0.5, ramp=0.3)
        both = (pair.point(T) > 0) & (pair.volume.weight(T) > 0)
        assert both.any()
