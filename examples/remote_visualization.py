"""Remote visualization -- the paper's wide-area setting.

The supercomputer side holds the partitioned data; the desktop side
requests hybrid extractions at whatever threshold its link affords.
This example runs both sides in one process over a localhost socket
with a throttled 'wide-area' bandwidth and compares shipping hybrids
against shipping the raw frame.

    python examples/remote_visualization.py
"""

from pathlib import Path

import numpy as np

from repro.beams.simulation import BeamConfig, BeamSimulation
from repro.core.dataset import as_dataset
from repro.hybrid.renderer import HybridRenderer
from repro.octree.partition import partition
from repro.remote.client import VisualizationClient
from repro.remote.server import VisualizationServer
from repro.render.camera import Camera
from repro.render.image import write_ppm

OUT = Path(__file__).parent / "output"
OUT.mkdir(exist_ok=True)

LINK_BPS = 10e6  # a 10 MB/s wide-area link


def main() -> None:
    # ---- the "supercomputer" side --------------------------------------
    print("generating + partitioning two time steps (server side)...")
    sim = BeamSimulation(BeamConfig(n_particles=40_000, n_cells=6, seed=12))
    frames = []
    sim.run(
        on_frame=lambda s, p: frames.append(
            partition(as_dataset(p), "xyz", max_level=6, capacity=48, step=s)
        ),
        frame_every=15,
    )
    raw_mb = frames[0].n_particles * 48 / 1e6
    print(f"  {len(frames)} partitioned frames, raw size {raw_mb:.1f} MB each")

    # ---- the "desktop" side --------------------------------------------
    with VisualizationServer(frames, bandwidth_bps=LINK_BPS) as server:
        print(f"server on {server.address}, link {LINK_BPS / 1e6:.0f} MB/s")
        with VisualizationClient(server.address) as client:
            steps = client.list_frames()
            print(f"available steps: {steps}")
            dens = frames[0].nodes["density"]
            for pct in (30, 70):
                thr = float(np.percentile(dens, pct))
                before = client.stats["seconds"]
                hybrid = client.get_hybrid(0, thr, resolution=32)
                took = client.stats["seconds"] - before
                eq_raw = raw_mb * 1e6 / LINK_BPS
                print(
                    f"  threshold p{pct}: {hybrid.n_points:6d} pts, "
                    f"{hybrid.nbytes() / 1e6:5.2f} MB in {took:5.2f} s "
                    f"(raw frame would take {eq_raw:.1f} s -> "
                    f"x{eq_raw / max(took, 1e-9):.1f} faster)"
                )
            # render the last received hybrid locally
            cam = Camera.fit_bounds(hybrid.lo, hybrid.hi, width=256, height=256)
            img = HybridRenderer(n_slices=32).render(hybrid, cam).to_rgb8()
            write_ppm(OUT / "remote_hybrid.ppm", img)
            print(
                f"mean throughput {client.throughput_bps() / 1e6:.1f} MB/s; "
                f"rendered remote_hybrid.ppm"
            )


if __name__ == "__main__":
    main()
