"""Boris tracking through cavity fields."""

import numpy as np
import pytest

from repro.beams.cavity import CavityTracker, boris_push, track_through_cavity
from repro.beams.distributions import PZ, X, Y, Z
from repro.fields.geometry import make_pillbox
from repro.fields.modes import pillbox_tm010


class TestBorisPush:
    def test_pure_e_accelerates(self):
        pos = np.zeros((1, 3))
        vel = np.zeros((1, 3))
        e = np.array([[0.0, 0.0, 2.0]])
        b = np.zeros((1, 3))
        _, v = boris_push(pos, vel, e, b, dt=0.1)
        assert v[0, 2] == pytest.approx(0.2)

    def test_pure_b_preserves_speed(self):
        pos = np.zeros((1, 3))
        vel = np.array([[1.0, 0.0, 0.0]])
        b = np.array([[0.0, 0.0, 3.0]])
        speed0 = np.linalg.norm(vel)
        for _ in range(100):
            pos, vel = boris_push(pos, vel, np.zeros((1, 3)), b, dt=0.05)
        assert np.linalg.norm(vel) == pytest.approx(speed0, rel=1e-12)

    def test_gyration_radius(self):
        """Circular orbit in uniform B: radius = v / B."""
        b_mag = 2.0
        v0 = 1.0
        # start on a circle about the origin: at (r, 0) the magnetic
        # force v x B must point toward -x, which needs v along -y
        pos = np.array([[v0 / b_mag, 0.0, 0.0]])
        vel = np.array([[0.0, -v0, 0.0]])
        b = np.array([[0.0, 0.0, b_mag]])
        radii = []
        for _ in range(200):
            pos, vel = boris_push(pos, vel, np.zeros((1, 3)), b, dt=0.02)
            radii.append(np.hypot(pos[0, 0], pos[0, 1]))
        assert np.mean(radii) == pytest.approx(v0 / b_mag, rel=0.01)

    def test_vectorized_over_particles(self, rng):
        pos = rng.standard_normal((50, 3))
        vel = rng.standard_normal((50, 3))
        e = rng.standard_normal((50, 3))
        b = rng.standard_normal((50, 3))
        p_new, v_new = boris_push(pos, vel, e, b, 0.01)
        assert p_new.shape == (50, 3)
        # matches per-particle evaluation
        p1, v1 = boris_push(pos[3:4], vel[3:4], e[3:4], b[3:4], 0.01)
        assert np.allclose(p_new[3], p1[0])
        assert np.allclose(v_new[3], v1[0])


class TestCavityTracker:
    def test_on_crest_particle_gains_energy(self):
        """A particle crossing the TM010 gap near crest gains pz --
        'accelerated from left to right'."""
        mode = pillbox_tm010(1.0, amplitude=0.3)
        particles = np.zeros((1, 6))
        particles[0, Z] = 0.0
        particles[0, PZ] = 0.05
        # stay within the first quarter RF period so cos(w t) > 0
        # throughout: a genuine on-crest crossing
        quarter = 0.25 * 2 * np.pi / mode.omega
        n_steps = int(quarter / 0.02) - 1
        track_through_cavity(particles, mode, dt=0.02, n_steps=n_steps)
        assert particles[0, PZ] > 0.05

    def test_charge_sign_flips_force(self):
        mode = pillbox_tm010(1.0, amplitude=0.3)
        plus = np.zeros((1, 6)); plus[0, PZ] = 0.05
        minus = plus.copy()
        track_through_cavity(plus, mode, dt=0.02, n_steps=25, charge_sign=+1)
        track_through_cavity(minus, mode, dt=0.02, n_steps=25, charge_sign=-1)
        assert plus[0, PZ] > 0.05 > minus[0, PZ]

    def test_structure_freezes_lost_particles(self):
        mode = pillbox_tm010(1.0, amplitude=0.0)
        structure = make_pillbox(radius=1.0, length=1.0, n_xy=4, n_z_per_unit=3)
        particles = np.zeros((2, 6))
        particles[0, [X, Z]] = [0.0, 0.5]     # inside, drifting +x
        particles[0, 3] = 0.5
        particles[1, [X, Z]] = [5.0, 0.5]     # already outside
        particles[1, 3] = 0.5
        tracker = CavityTracker(mode=mode, structure=structure)
        tracker.run(particles, dt=0.05, n_steps=10)
        assert particles[0, X] > 0.0          # moved
        assert particles[1, X] == 5.0         # frozen at the wall

    def test_trajectories_recorded(self):
        mode = pillbox_tm010(1.0, amplitude=0.1)
        particles = np.zeros((3, 6))
        particles[:, PZ] = 0.1
        _, snaps = track_through_cavity(
            particles, mode, dt=0.05, n_steps=20, trajectory_every=5
        )
        assert len(snaps) == 4
        times = [t for t, _ in snaps]
        assert times == sorted(times)
        assert snaps[0][1].shape == (3, 3)

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            CavityTracker()
