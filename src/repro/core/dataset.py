"""Dataset-first entry point: one protocol over in-core and sharded data.

Historically every pipeline stage took a raw ``(N, 6)`` ndarray -- fine
while frames fit in RAM, a dead end at the paper's 10^8-10^9 particle
scale.  This module defines the :class:`ParticleDataset` protocol that
both backends satisfy:

* :class:`ArrayDataset` -- the legacy in-core array (or a memory-mapped
  ``.frame`` payload), chunked virtually;
* :class:`repro.core.store.ShardedStore` -- the out-of-core sharded
  store, one chunk per shard (registered as a virtual subclass).

:func:`open_dataset` is the single public constructor: hand it an
ndarray, a ``.frame`` file, or a store directory and get back a
dataset that ``partition(...)`` / ``extract(...)`` consume directly.
Raw-array call shapes keep working through :func:`as_dataset`, the
internal (non-warning) coercion helper.
"""

from __future__ import annotations

import abc
from pathlib import Path

import numpy as np

from repro.core.errors import FormatError
from repro.core.store import ShardedStore, is_store_dir

__all__ = ["ParticleDataset", "ArrayDataset", "open_dataset", "as_dataset"]

DEFAULT_CHUNK_ROWS = 262_144


class ParticleDataset(abc.ABC):
    """Chunk-addressable view of one particle frame (N rows x 6 columns).

    The contract every pipeline stage codes against: a dataset knows
    how many particles it holds, which simulation step it came from,
    and serves the rows as a sequence of ``(n_i, 6)`` chunks whose
    concatenation *is* the frame, in order.  Implementations decide
    where the bytes live (RAM, a memory-mapped frame file, a sharded
    store on disk).
    """

    @property
    @abc.abstractmethod
    def n_particles(self) -> int:
        """Total number of particle rows."""

    @property
    @abc.abstractmethod
    def step(self) -> int:
        """Simulation time-step index the frame came from."""

    @property
    @abc.abstractmethod
    def n_chunks(self) -> int:
        """Number of chunks :meth:`chunk` addresses."""

    @abc.abstractmethod
    def chunk(self, i: int, columns=None) -> np.ndarray:
        """Chunk ``i`` as an in-RAM array, optionally restricted to the
        given column indices."""

    def chunks(self, columns=None):
        """Iterate every chunk in frame order."""
        for i in range(self.n_chunks):
            yield self.chunk(i, columns)

    def bounds(self, columns=None):
        """Exact global (min, max) over the selected columns, computed
        chunk-wise so no backend has to materialize the frame."""
        lo = hi = None
        for chunk in self.chunks(columns):
            if len(chunk) == 0:
                continue
            clo = chunk.min(axis=0)
            chi = chunk.max(axis=0)
            lo = clo if lo is None else np.minimum(lo, clo)
            hi = chi if hi is None else np.maximum(hi, chi)
        if lo is None:
            raise ValueError("dataset holds no particles")
        return lo, hi

    def to_array(self) -> np.ndarray:
        """Materialize the whole frame in RAM (legacy in-core path)."""
        return np.concatenate(list(self.chunks()))

    def __len__(self) -> int:
        return self.n_particles


# the sharded store satisfies the protocol structurally; registering it
# keeps isinstance(ds, ParticleDataset) the one dispatch test without a
# store -> dataset import cycle
ParticleDataset.register(ShardedStore)


class ArrayDataset(ParticleDataset):
    """In-core backend: a plain ``(N, 6)`` array behind the protocol.

    Chunking is virtual -- ``chunk(i)`` is a zero-copy row slice -- so
    wrapping an array costs nothing.  Also wraps the ``np.memmap``
    payload of :func:`repro.beams.io.read_frame_mmap`, which makes a
    single monolithic ``.frame`` file streamable without conversion.
    """

    def __init__(self, particles, step: int = 0, chunk_rows: int = DEFAULT_CHUNK_ROWS):
        particles = np.asarray(particles)
        if particles.ndim != 2 or particles.shape[1] != 6:
            raise ValueError("particles must be (N, 6)")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self._particles = particles
        self._step = int(step)
        self.chunk_rows = int(chunk_rows)

    @property
    def n_particles(self) -> int:
        return len(self._particles)

    @property
    def step(self) -> int:
        return self._step

    @property
    def n_chunks(self) -> int:
        return max(1, -(-self.n_particles // self.chunk_rows))

    def chunk(self, i: int, columns=None) -> np.ndarray:
        if not 0 <= i < self.n_chunks:
            raise IndexError(f"chunk {i} out of range [0, {self.n_chunks})")
        rows = self._particles[i * self.chunk_rows : (i + 1) * self.chunk_rows]
        if columns is None:
            return rows
        return rows[:, list(columns)]

    def to_array(self) -> np.ndarray:
        return np.asarray(self._particles, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ArrayDataset(n_particles={self.n_particles}, step={self.step})"


def as_dataset(data, step: int = 0) -> ParticleDataset:
    """Coerce ``data`` to a :class:`ParticleDataset` without warnings.

    The internal seam: pipeline code calls this so raw arrays flowing
    through existing plumbing never trip the public deprecation shim.
    Accepts a dataset (passed through), an ndarray, or anything
    array-like with 6 columns.
    """
    if isinstance(data, ParticleDataset):
        return data
    return ArrayDataset(np.asarray(data, dtype=np.float64), step=step)


def open_dataset(source, step: int = 0) -> ParticleDataset:
    """Open any particle-frame backend behind the one dataset protocol.

    ``source`` may be:

    * an ``(N, 6)`` ndarray -> :class:`ArrayDataset` (zero-copy);
    * a sharded-store directory -> :class:`repro.core.store.ShardedStore`,
      validated against its manifest;
    * a ``.frame`` file -> :class:`ArrayDataset` over the file's
      memory-mapped payload (the frame's own step wins);
    * an existing dataset -> returned as-is.

    This is the dataset-first public entry point: the object it
    returns goes straight into ``partition(...)`` / ``extract(...)``.
    """
    if isinstance(source, ParticleDataset):
        return source
    if isinstance(source, np.ndarray):
        return ArrayDataset(source, step=step)
    if isinstance(source, (str, Path)):
        path = Path(source)
        if is_store_dir(path):
            return ShardedStore.open(path)
        if path.is_file():
            from repro.beams.io import read_frame_mmap

            particles, frame_step = read_frame_mmap(path)
            return ArrayDataset(particles, step=frame_step)
        raise FormatError(f"{path}: neither a sharded store directory nor a frame file")
    raise TypeError(
        f"cannot open a dataset from {type(source).__name__}; expected an "
        "(N, 6) array, a store directory, or a .frame file"
    )
