"""End-to-end pipelines reproducing the paper's two workflows.

Both pipelines accept ``checkpoint_dir=...``: stage outputs are saved
into a :class:`repro.core.checkpoint.Checkpoint` directory through the
package's atomic on-disk formats, and a re-run after a kill loads the
completed stages instead of recomputing them.  Resumption is visible
in a trace as the ``checkpoint_stages_resumed`` /
``checkpoint_steps_resumed`` counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.beams.simulation import BeamSimulation
from repro.core.checkpoint import Checkpoint
from repro.core.config import BeamPipelineConfig, FieldLinePipelineConfig
from repro.core.dataset import as_dataset
from repro.core.trace import count, gauge, span
from repro.fieldlines.seeding import OrderedFieldLines, seed_density_proportional
from repro.fieldlines.sos import build_strips, render_strips
from repro.fields.geometry import make_multicell_structure
from repro.fields.modes import multicell_standing_wave
from repro.fields.sampling import AnalyticSampler, YeeSampler
from repro.fields.solver import TimeDomainSolver
from repro.hybrid.renderer import HybridRenderer
from repro.hybrid.representation import HybridFrame
from repro.octree.extraction import extract
from repro.octree.partition import PartitionedFrame, partition
from repro.render.camera import Camera

__all__ = ["BeamPipelineResult", "FieldLinePipelineResult", "beam_pipeline", "fieldline_pipeline"]


@dataclass
class BeamPipelineResult:
    """Everything the beam workflow produced."""

    config: BeamPipelineConfig
    partitioned: list            # PartitionedFrame per kept step
    hybrids: list                # HybridFrame per kept step
    steps: list                  # step indices
    renderer: HybridRenderer
    camera: Camera
    images: list = field(default_factory=list)   # rgb8 arrays if rendered


@dataclass
class FieldLinePipelineResult:
    """Everything the field-line workflow produced."""

    config: FieldLinePipelineConfig
    structure: object
    sampler: object
    ordered: OrderedFieldLines
    camera: Camera
    image: np.ndarray | None = None


def _part_stem(ckpt: Checkpoint, step: int):
    return ckpt.path(f"part_{step:06d}")


def beam_pipeline(
    config: BeamPipelineConfig | None = None,
    render: bool = True,
    checkpoint_dir=None,
) -> BeamPipelineResult:
    """Simulate a beam, partition and extract every kept frame, and
    (optionally) render each hybrid.

    The extraction threshold is the configured percentile of the first
    frame's node densities, held fixed across the run so frame sizes
    are comparable.

    With ``checkpoint_dir``, each partitioned frame and each extracted
    hybrid is saved as it completes; a killed run re-invoked with the
    same directory resumes from the last completed stage (a fully
    checkpointed partition stage even skips re-simulating the beam).
    """
    config = config or BeamPipelineConfig()
    ckpt = Checkpoint(checkpoint_dir) if checkpoint_dir is not None else None
    gauge("beam_n_particles", config.beam.n_particles)

    from repro.octree.format import load_partitioned, save_partitioned

    partitioned: list[PartitionedFrame] = []
    steps: list[int] = []

    if ckpt is not None and ckpt.done("partition"):
        # the beam never needs re-simulating: every kept frame is on disk
        count("checkpoint_stages_resumed")
        with span("partition_resume"):
            for step in ckpt.meta("partition")["steps"]:
                partitioned.append(load_partitioned(_part_stem(ckpt, step)))
                steps.append(int(step))
                count("checkpoint_steps_resumed")
    else:
        sim = BeamSimulation(config.beam.resolved())
        # drive the frame generator so simulation stepping and per-frame
        # partitioning land in separate stage spans
        frames = sim.frames(frame_every=config.frame_every)
        while True:
            with span("simulate"):
                try:
                    step, particles = next(frames)
                except StopIteration:
                    break
            if ckpt is not None and ckpt.has_step("partition", step):
                count("checkpoint_steps_resumed")
                pf = load_partitioned(_part_stem(ckpt, step))
            else:
                with span("partition", step=step):
                    pf = partition(
                        as_dataset(particles),
                        config.plot_type,
                        max_level=config.max_level,
                        capacity=config.capacity,
                        step=step,
                    )
                if ckpt is not None:
                    save_partitioned(pf, _part_stem(ckpt, step))
                    ckpt.record_step("partition", step)
            partitioned.append(pf)
            steps.append(step)
        if ckpt is not None:
            ckpt.mark_done("partition", steps=steps)

    if ckpt is not None and ckpt.done("extract"):
        count("checkpoint_stages_resumed")
        with span("extract_resume"):
            threshold = float(ckpt.meta("extract")["threshold"])
            hybrids = []
            for step in steps:
                hybrids.append(
                    HybridFrame.load(ckpt.path(f"hyb_{step:06d}.hybrid"))
                )
                count("checkpoint_steps_resumed")
    else:
        with span("extract"):
            threshold = float(
                np.percentile(
                    partitioned[0].nodes["density"], config.threshold_percentile
                )
            )
            hybrids = [
                extract(pf, threshold, volume_resolution=config.volume_resolution)
                for pf in partitioned
            ]
        if ckpt is not None:
            for step, h in zip(steps, hybrids):
                h.save(ckpt.path(f"hyb_{step:06d}.hybrid"))
            ckpt.mark_done("extract", threshold=threshold)

    camera = Camera.fit_bounds(
        hybrids[0].lo, hybrids[0].hi,
        width=config.image_size, height=config.image_size,
    )
    renderer = HybridRenderer(n_slices=config.n_slices)
    result = BeamPipelineResult(
        config=config,
        partitioned=partitioned,
        hybrids=hybrids,
        steps=steps,
        renderer=renderer,
        camera=camera,
    )
    if render:
        with span("render", n_frames=len(hybrids)):
            result.images = [
                renderer.render(h, camera=camera).to_rgb8() for h in hybrids
            ]
    return result


def fieldline_pipeline(
    config: FieldLinePipelineConfig | None = None,
    render: bool = True,
    checkpoint_dir=None,
) -> FieldLinePipelineResult:
    """Build a structure, obtain fields, seed lines, render strips.

    With ``checkpoint_dir``, the seeded/ordered lines (the expensive
    stage) are saved as a packed-line blob plus the ordering ledger; a
    re-run loads them instead of re-integrating.
    """
    config = config or FieldLinePipelineConfig()
    ckpt = Checkpoint(checkpoint_dir) if checkpoint_dir is not None else None
    with span("mesh", n_cells=config.n_cells):
        structure = make_multicell_structure(
            config.n_cells, n_xy=config.n_xy, n_z_per_unit=config.n_z_per_unit
        )
    with span("solve", use_solver=config.use_solver):
        if config.use_solver:
            solver = TimeDomainSolver(
                structure, cells_per_unit=config.solve_cells_per_unit
            )
            solver.run(solver.steps_for(config.solve_duration))
            solver.fields_on_mesh()
            sampler = YeeSampler(solver, config.field)
        else:
            mode = multicell_standing_wave(structure)
            t_snapshot = 0.0 if config.field == "E" else np.pi / (2 * mode.omega)
            structure.mesh.set_field("E", mode.e_field(structure.mesh.vertices, t_snapshot))
            structure.mesh.set_field("B", mode.b_field(structure.mesh.vertices, t_snapshot))
            sampler = AnalyticSampler(mode, config.field, t=t_snapshot, structure=structure)

    if ckpt is not None and ckpt.done("seed"):
        count("checkpoint_stages_resumed")
        with span("seed_resume"):
            from repro.fieldlines.compact import unpack_lines

            lines = unpack_lines(ckpt.path("seed.lines").read_bytes())
            ledger = np.load(ckpt.path("seed_ledger.npz"))
            ordered = OrderedFieldLines(
                lines=lines,
                desired=ledger["desired"],
                achieved=ledger["achieved"],
                field_name=config.field,
                meta=json.loads(ckpt.meta("seed").get("meta", "{}")),
            )
    else:
        with span("seed", total_lines=config.total_lines):
            ordered = seed_density_proportional(
                structure.mesh,
                sampler,
                total_lines=config.total_lines,
                field_name=config.field,
                loop_tolerance=0.02 if config.field == "B" else None,
            )
        if ckpt is not None:
            from repro.core.atomic import atomic_write_bytes
            from repro.fieldlines.compact import pack_lines

            atomic_write_bytes(ckpt.path("seed.lines"), pack_lines(ordered.lines))
            import io

            buf = io.BytesIO()
            np.savez(buf, desired=ordered.desired, achieved=ordered.achieved)
            atomic_write_bytes(ckpt.path("seed_ledger.npz"), buf.getvalue())
            ckpt.mark_done("seed", meta=json.dumps(ordered.meta, default=str))
    camera = Camera.fit_bounds(
        *structure.bounds(), width=config.image_size, height=config.image_size
    )
    result = FieldLinePipelineResult(
        config=config,
        structure=structure,
        sampler=sampler,
        ordered=ordered,
        camera=camera,
    )
    if render:
        with span("strip"):
            strips = build_strips(ordered.lines, camera, width=config.line_width)
        with span("render"):
            fb = render_strips(camera, strips)
            result.image = fb.to_rgb8()
    return result
