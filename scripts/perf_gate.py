"""Perf regression gates over the committed BENCH_*.json baselines.

Default mode compares the freshly measured speedup ratios in
``BENCH_frame_cache.json`` against the baseline committed at HEAD and
fails when any gated ratio regressed by more than ``TOLERANCE`` (20 %).
Ratios, not absolute times, so the gate is stable across machines of
different speed.

``--store`` gates ``BENCH_sharded_store.json`` instead: hard floors on
the out-of-core RAM cap (peak RSS < 0.5 of the raw dataset) and the
streamed-vs-in-core equivalence flags, plus a drift check of the RSS
fraction against the committed baseline.

``--forest`` gates ``BENCH_forest.json``: the forest gather image must
be bitwise-identical to the single-octree render, the sort-last
composite must stay within the pinned brick-boundary tolerance, and --
on machines with at least 4 CPUs, recorded in the bench -- the
4-worker partition speedup must reach the 2.5x floor (the floor is
physically unreachable on fewer cores, so it is skipped with a notice
there).

``--lod`` gates ``BENCH_lod.json``: the progressive stream's
time-to-first-image must beat the flat fetch by at least 4x, every
yielded prefix must have decoded to a valid monotone frame, and the
fully refined frame must be bit-identical to the flat extraction; the
speedup is also drift-checked against the committed baseline.

``--amr`` gates ``BENCH_amr.json``: the adaptive AMR volume must
deposit at least 1.5x faster than the flat CIC deposit at the matched
effective core resolution, resolve strictly more nonzero beam-core
cells than the flat ``64^3`` grid at equal (within 5 %) bytes, keep
the flat extraction and its render bitwise-identical alongside the
adaptive build (the SHA-256 digests are pinned against the committed
baseline), and splat batched == serial bitwise; the deposit speedup is
also drift-checked against the committed baseline.

``--service`` gates ``BENCH_service.json``: the multi-tenant chaos
acceptance run must leave the service alive, with zero silently-failed
well-behaved clients (every one served or explicitly shed with BUSY),
bounded queues fully drained, a coalescing cache hit rate above the
0.5 floor on the hot set, and a p99 served-request latency under an
absolute ceiling; the hit rate is also drift-checked against the
committed baseline.

``--scenarios`` gates ``BENCH_scenarios.json``: the envelope feedback
loop must converge within its documented step budget with the
closed-loop error inside twice the deadband, the 16-member sweep must
land every member as a CRC-verified sharded store despite one injected
worker kill, re-invocation must resume all 16 members from disk, one
member must flow through the forest partitioner and LOD builder
unchanged, and member tracking must be bitwise-deterministic under its
seed; the sweep throughput is also drift-checked against the committed
baseline on machines with a matching CPU count.

Run via ``scripts/check.sh --perf`` / ``--store`` / ``--forest`` /
``--service`` / ``--scenarios`` (which refresh the JSON first).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

BENCH_FILE = "BENCH_frame_cache.json"
STORE_BENCH_FILE = "BENCH_sharded_store.json"
FOREST_BENCH_FILE = "BENCH_forest.json"
SERVICE_BENCH_FILE = "BENCH_service.json"
LOD_BENCH_FILE = "BENCH_lod.json"
AMR_BENCH_FILE = "BENCH_amr.json"
SCENARIOS_BENCH_FILE = "BENCH_scenarios.json"
TOLERANCE = 0.20
LOD_TTFI_SPEEDUP_FLOOR = 4.0
AMR_DEPOSIT_SPEEDUP_FLOOR = 1.5
AMR_BYTES_TOL = 0.05
RSS_FRACTION_FLOOR = 0.5
FOREST_SPEEDUP_FLOOR = 2.5
FOREST_SORTLAST_ABS_TOL = 0.1
SERVICE_HIT_RATE_FLOOR = 0.5
SERVICE_P99_CEILING_S = 10.0  # absolute; generous for slow CI machines

# (human label, path into extra{}) for every gated ratio
GATES = [
    ("warm-frame speedup", ("frame", "warm_speedup")),
    ("space-charge run speedup", ("spacecharge", "run_speedup")),
    ("cached-solve speedup", ("spacecharge", "solve_speedup")),
]


def _lookup(extra: dict, path) -> float:
    node = extra
    for key in path:
        node = node[key]
    return float(node)


def _seeding_speedup(extra: dict, batch_size: int = 8) -> float:
    for row in extra["seeding"]["batched"]:
        if row["batch_size"] == batch_size:
            return float(row["speedup"])
    raise KeyError(f"no batched seeding row for batch_size={batch_size}")


def _load(root: Path, bench_file: str):
    """Return (fresh extra, baseline extra or None) for one bench file."""
    fresh_path = root / bench_file
    if not fresh_path.exists():
        print(f"perf gate: {bench_file} missing -- run the bench first", file=sys.stderr)
        raise SystemExit(2)
    fresh = json.loads(fresh_path.read_text())["extra"]

    proc = subprocess.run(
        ["git", "show", f"HEAD:{bench_file}"],
        cwd=root, capture_output=True, text=True,
    )
    base = json.loads(proc.stdout)["extra"] if proc.returncode == 0 else None
    return fresh, base


def gate_store(root: Path) -> int:
    """Hard floors + baseline drift for the out-of-core store bench."""
    fresh, base = _load(root, STORE_BENCH_FILE)
    store, eq = fresh["store"], fresh["equivalence"]

    failed = False
    flags = [
        (
            f"peak RSS fraction {store['rss_fraction']:.2f} of raw "
            f"({store['raw_mb']:.0f} MB, floor < {RSS_FRACTION_FLOOR:.2f})",
            store["rss_fraction"] < RSS_FRACTION_FLOOR,
        ),
        ("streamed nodes bitwise-identical to in-core", bool(eq["nodes_bitwise"])),
        ("streamed particle order bitwise-identical", bool(eq["particles_bitwise"])),
        ("streamed halo points bitwise-identical", bool(eq["points_bitwise"])),
        (f"volume max ULP {eq['volume_max_ulp']} (<= 1)", eq["volume_max_ulp"] <= 1),
        (f"image max ULP {eq['image_max_ulp']} (<= 1)", eq["image_max_ulp"] <= 1),
    ]
    for label, ok in flags:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failed |= not ok

    if base is not None:
        was, now = float(base["store"]["rss_fraction"]), float(store["rss_fraction"])
        ceiling = (1.0 + TOLERANCE) * was
        ok = now <= ceiling
        print(
            f"  {'ok  ' if ok else 'FAIL'} RSS fraction vs baseline: "
            f"{now:.3f} (baseline {was:.3f}, ceiling {ceiling:.3f})"
        )
        failed |= not ok
    else:
        print(f"  no committed {STORE_BENCH_FILE} baseline; drift check skipped")

    if failed:
        print("perf gate: out-of-core store gate failed", file=sys.stderr)
        return 1
    print("perf gate: store RAM cap and equivalence floors hold")
    return 0


def gate_forest(root: Path) -> int:
    """Hard floors for the forest partition + sort-last composite bench."""
    fresh, base = _load(root, FOREST_BENCH_FILE)
    part, eq = fresh["partition"], fresh["equivalence"]
    cpus = int(fresh.get("cpu_count", 1))

    failed = False
    flags = [
        ("forest nodes bitwise-identical to single octree", bool(eq["nodes_bitwise"])),
        ("forest particle order bitwise-identical", bool(eq["particles_bitwise"])),
        (
            "gather-mode image bitwise-identical to single-octree render",
            bool(eq["gather_image_bitwise"]),
        ),
        (
            f"sort-last max |diff| {eq['sortlast_max_abs_diff']:.3g} "
            f"(<= {FOREST_SORTLAST_ABS_TOL})",
            eq["sortlast_max_abs_diff"] <= FOREST_SORTLAST_ABS_TOL,
        ),
        (
            f"composite time recorded "
            f"({fresh['render']['t_composite_s'] * 1e3:.0f} ms)",
            fresh["render"]["t_composite_s"] > 0.0,
        ),
    ]
    for label, ok in flags:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failed |= not ok

    speedup = float(part["speedup_4"])
    if cpus >= 4:
        ok = speedup >= FOREST_SPEEDUP_FLOOR
        print(
            f"  {'ok  ' if ok else 'FAIL'} 4-worker partition speedup "
            f"x{speedup:.2f} (floor x{FOREST_SPEEDUP_FLOOR})"
        )
        failed |= not ok
    else:
        print(
            f"  skip 4-worker speedup floor: bench ran on {cpus} cpu(s) "
            f"(measured x{speedup:.2f}; floor x{FOREST_SPEEDUP_FLOOR} "
            "needs >= 4)"
        )

    if base is not None and int(base.get("cpu_count", 1)) == cpus and cpus >= 4:
        was = float(base["partition"]["speedup_4"])
        floor = (1.0 - TOLERANCE) * was
        ok = speedup >= floor
        print(
            f"  {'ok  ' if ok else 'FAIL'} speedup vs baseline: x{speedup:.2f} "
            f"(baseline x{was:.2f}, floor x{floor:.2f})"
        )
        failed |= not ok

    if failed:
        print("perf gate: forest gate failed", file=sys.stderr)
        return 1
    print("perf gate: forest equivalence and speedup floors hold")
    return 0


def gate_service(root: Path) -> int:
    """Hard floors for the multi-tenant service chaos acceptance run."""
    fresh, base = _load(root, SERVICE_BENCH_FILE)
    fleet, svc = fresh["fleet"], fresh["service"]

    failed = False
    flags = [
        ("service alive after the fleet", bool(fresh["alive"])),
        (
            f"no silent failures ({fleet['failed']} failed of "
            f"{fleet['well_behaved']} well-behaved)",
            fleet["failed"] == 0,
        ),
        (
            f"every well-behaved client served or shed "
            f"({fleet['served']} + {fleet['shed']} == {fleet['well_behaved']})",
            fleet["served"] + fleet["shed"] == fleet["well_behaved"],
        ),
        (
            f"cache hit rate {svc['cache_hit_rate']:.3f} "
            f"(floor > {SERVICE_HIT_RATE_FLOOR})",
            svc["cache_hit_rate"] > SERVICE_HIT_RATE_FLOOR,
        ),
        (
            f"queues drained (depth {svc['queue_depth']} after the run)",
            svc["queue_depth"] == 0,
        ),
        (
            f"no extraction errors ({svc['extraction_errors']})",
            svc["extraction_errors"] == 0,
        ),
        (
            f"served-request p99 {fleet['p99_s']:.3f} s "
            f"(ceiling {SERVICE_P99_CEILING_S:.0f} s)",
            fleet["p99_s"] <= SERVICE_P99_CEILING_S,
        ),
    ]
    for label, ok in flags:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failed |= not ok

    if base is not None:
        was = float(base["service"]["cache_hit_rate"])
        now = float(svc["cache_hit_rate"])
        floor = (1.0 - TOLERANCE) * was
        ok = now >= floor
        print(
            f"  {'ok  ' if ok else 'FAIL'} hit rate vs baseline: "
            f"{now:.3f} (baseline {was:.3f}, floor {floor:.3f})"
        )
        failed |= not ok
    else:
        print(f"  no committed {SERVICE_BENCH_FILE} baseline; drift check skipped")

    if failed:
        print("perf gate: multi-tenant service gate failed", file=sys.stderr)
        return 1
    print("perf gate: service survival, shedding, and cache floors hold")
    return 0


def gate_lod(root: Path) -> int:
    """Hard floors for the progressive-streaming TTFI bench."""
    fresh, base = _load(root, LOD_BENCH_FILE)
    speedup = float(fresh["ttfi_speedup"])

    failed = False
    flags = [
        (
            f"progressive TTFI speedup x{speedup:.1f} over flat fetch "
            f"(floor x{LOD_TTFI_SPEEDUP_FLOOR:.0f}, "
            f"{fresh['ttfi_flat_s'] * 1e3:.0f} ms -> "
            f"{fresh['ttfi_lod_s'] * 1e3:.0f} ms at "
            f"{fresh['n_particles']} particles)",
            speedup >= LOD_TTFI_SPEEDUP_FLOOR,
        ),
        (
            f"every yielded prefix a valid monotone frame "
            f"({fresh['n_frames']} frames)",
            bool(fresh["prefix_valid"]),
        ),
        (
            "fully refined frame bit-identical to the flat extraction",
            bool(fresh["final_bitwise"]),
        ),
        (
            f"stream converged ({fresh['converged_s'] * 1e3:.0f} ms, "
            f"{fresh['refinements']} refinements)",
            fresh["converged_s"] > 0.0,
        ),
    ]
    for label, ok in flags:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failed |= not ok

    if base is not None and int(base["n_particles"]) == int(fresh["n_particles"]):
        was = float(base["ttfi_speedup"])
        floor = (1.0 - TOLERANCE) * was
        ok = speedup >= floor
        print(
            f"  {'ok  ' if ok else 'FAIL'} TTFI speedup vs baseline: "
            f"x{speedup:.1f} (baseline x{was:.1f}, floor x{floor:.1f})"
        )
        failed |= not ok
    elif base is not None:
        print(
            f"  skip drift check: bench ran at {fresh['n_particles']} "
            f"particles, baseline at {base['n_particles']}"
        )
    else:
        print(f"  no committed {LOD_BENCH_FILE} baseline; drift check skipped")

    if failed:
        print("perf gate: progressive-streaming gate failed", file=sys.stderr)
        return 1
    print("perf gate: progressive TTFI and refinement correctness floors hold")
    return 0


def gate_amr(root: Path) -> int:
    """Hard floors for the adaptive-AMR + Gaussian-splat bench."""
    fresh, base = _load(root, AMR_BENCH_FILE)
    dep, det = fresh["deposit"], fresh["detail"]
    fb, splat = fresh["flat_bitwise"], fresh["splat"]
    speedup = float(dep["speedup"])
    bytes_ratio = float(det["bytes_ratio"])

    failed = False
    flags = [
        (
            f"adaptive deposit x{speedup:.1f} over flat at effective "
            f"{dep['flat_res']}^3 (floor x{AMR_DEPOSIT_SPEEDUP_FLOOR}, "
            f"{dep['t_flat_s'] * 1e3:.0f} ms -> {dep['t_amr_s'] * 1e3:.0f} ms "
            f"at {dep['n_particles']} particles)",
            speedup >= AMR_DEPOSIT_SPEEDUP_FLOOR,
        ),
        (
            f"equal memory: adaptive/flat bytes {bytes_ratio:.3f} "
            f"(within {AMR_BYTES_TOL:.0%})",
            1.0 - AMR_BYTES_TOL <= bytes_ratio <= 1.0 + AMR_BYTES_TOL,
        ),
        (
            f"beam-core detail: adaptive {det['amr_core_nonzero']} nonzero "
            f"cells > flat {det['flat_core_nonzero']} "
            f"(x{det['detail_ratio']:.1f}, {det['refined_bricks']} of "
            f"{det['occupied_bricks']} bricks refined)",
            det["amr_core_nonzero"] > det["flat_core_nonzero"],
        ),
        (
            "flat volume bitwise-identical alongside the adaptive build",
            bool(fb["alongside_bitwise"]),
        ),
        ("splat fragments batched == serial bitwise", bool(splat["batched_bitwise"])),
        (
            f"splat renders batched == serial bitwise "
            f"({splat['n_fragments']} fragments)",
            bool(splat["render_batched_bitwise"]),
        ),
    ]
    for label, ok in flags:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failed |= not ok

    if base is not None and int(base["n_particles"]) == int(fresh["n_particles"]):
        for key in ("volume_sha256", "image_sha256"):
            ok = fb[key] == base["flat_bitwise"][key]
            print(
                f"  {'ok  ' if ok else 'FAIL'} flat {key.split('_')[0]} digest "
                f"matches committed baseline"
            )
            failed |= not ok
        was = float(base["deposit"]["speedup"])
        floor = (1.0 - TOLERANCE) * was
        ok = speedup >= floor
        print(
            f"  {'ok  ' if ok else 'FAIL'} deposit speedup vs baseline: "
            f"x{speedup:.1f} (baseline x{was:.1f}, floor x{floor:.1f})"
        )
        failed |= not ok
    elif base is not None:
        print(
            f"  skip drift check: bench ran at {fresh['n_particles']} "
            f"particles, baseline at {base['n_particles']}"
        )
    else:
        print(f"  no committed {AMR_BENCH_FILE} baseline; drift check skipped")

    if failed:
        print("perf gate: adaptive-AMR gate failed", file=sys.stderr)
        return 1
    print("perf gate: AMR deposit, equal-memory detail, and splat floors hold")
    return 0


def gate_scenarios(root: Path) -> int:
    """Hard floors for the digital-twin scenario acceptance bench."""
    fresh, base = _load(root, SCENARIOS_BENCH_FILE)
    fb, sweep, render = fresh["feedback"], fresh["sweep"], fresh["render"]
    cpus = int(fresh.get("cpu_count", 1))

    failed = False
    flags = [
        (
            f"envelope feedback converged at step {fb['converged_step']} "
            f"(budget {fb['step_budget']})",
            bool(fb["within_budget"]),
        ),
        (
            f"closed-loop error {fb['final_error']:.4f} within "
            f"2x deadband ({fb['deadband']})",
            fb["final_error"] <= 2.0 * fb["deadband"],
        ),
        (
            f"all sweep members landed as verified stores "
            f"({sweep['members_ok']} of {sweep['n_members']})",
            sweep["members_ok"] == sweep["n_members"] == 16,
        ),
        (
            f"worker crash injected and survived "
            f"({sweep['pool_breaks']} pool break(s), "
            f"{sweep['shard_retries']} retried shard(s))",
            bool(sweep["crash_injected"]) and sweep["pool_breaks"] >= 1,
        ),
        (
            f"re-invocation resumed every member from disk "
            f"({sweep['resumed']} of {sweep['n_members']} in "
            f"{sweep['t_resume_s'] * 1e3:.0f} ms)",
            sweep["resumed"] == sweep["n_members"],
        ),
        (
            f"member renderable through forest + LOD "
            f"({render['forest_particles']} particles, "
            f"{render['lod_levels']} LOD level(s))",
            bool(render["renderable"]),
        ),
        (
            "member tracking deterministic under its seed",
            bool(render["deterministic"]),
        ),
    ]
    for label, ok in flags:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failed |= not ok

    if base is not None and int(base.get("cpu_count", 1)) == cpus:
        was = float(base["sweep"]["members_per_s"])
        now = float(sweep["members_per_s"])
        floor = (1.0 - TOLERANCE) * was
        ok = now >= floor
        print(
            f"  {'ok  ' if ok else 'FAIL'} sweep throughput vs baseline: "
            f"{now:.2f} members/s (baseline {was:.2f}, floor {floor:.2f})"
        )
        failed |= not ok
    elif base is not None:
        print(
            f"  skip drift check: bench ran on {cpus} cpu(s), "
            f"baseline on {base.get('cpu_count', 1)}"
        )
    else:
        print(f"  no committed {SCENARIOS_BENCH_FILE} baseline; drift check skipped")

    if failed:
        print("perf gate: scenario gate failed", file=sys.stderr)
        return 1
    print("perf gate: feedback budget, sweep survival, and render floors hold")
    return 0


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    if "--scenarios" in sys.argv[1:]:
        return gate_scenarios(root)
    if "--store" in sys.argv[1:]:
        return gate_store(root)
    if "--lod" in sys.argv[1:]:
        return gate_lod(root)
    if "--amr" in sys.argv[1:]:
        return gate_amr(root)
    if "--forest" in sys.argv[1:]:
        return gate_forest(root)
    if "--service" in sys.argv[1:]:
        return gate_service(root)

    fresh, base = _load(root, BENCH_FILE)
    if base is None:
        print(f"perf gate: no committed {BENCH_FILE} baseline; nothing to compare")
        return 0

    checks = [(label, _lookup(base, path), _lookup(fresh, path)) for label, path in GATES]
    checks.append(
        ("batched-seeding speedup (K=8)", _seeding_speedup(base), _seeding_speedup(fresh))
    )

    failed = False
    for label, was, now in checks:
        floor = (1.0 - TOLERANCE) * was
        ok = now >= floor
        status = "ok  " if ok else "FAIL"
        print(f"  {status} {label}: x{now:.2f} (baseline x{was:.2f}, floor x{floor:.2f})")
        failed |= not ok

    if not bool(fresh["frame"].get("bit_identical")):
        print("  FAIL cached frame no longer bit-identical to uncached")
        failed = True

    if failed:
        print("perf gate: regression beyond 20% of committed baseline", file=sys.stderr)
        return 1
    print("perf gate: all ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
