"""Digital-twin scenario layer: declarative lattices, closed-loop
feedback, ensemble sweeps.

The paper's terascale runs are campaigns, not single simulations:
a lattice is designed, a control room tunes it against live
diagnostics, and parameter ensembles map the operating envelope.
This package is that workflow over the in-process engine --

:mod:`~repro.beams.scenario.spec`
    pure-data :class:`LatticeSpec` / :class:`ScenarioSpec` trees that
    JSON round-trip and compile to a live :class:`Scenario`;
:mod:`~repro.beams.scenario.feedback`
    closed-loop controllers reading beam diagnostics each step and
    actuating named lattice knobs;
:mod:`~repro.beams.scenario.sweep`
    :func:`run_sweep`, fanning parameter grids through the crash-safe
    shard executor into per-member :class:`~repro.core.store.ShardedStore`
    directories the forest / LOD / service paths consume.
"""

from repro.beams.scenario.feedback import (
    EnvelopeController,
    FeedbackController,
    OrbitController,
    controllers_from_spec,
)
from repro.beams.scenario.spec import (
    ElementSpec,
    LatticeSpec,
    Scenario,
    ScenarioSpec,
    load_scenario,
)
from repro.beams.scenario.sweep import (
    SweepResult,
    expand_axes,
    load_sweep,
    run_sweep,
)

__all__ = [
    "ElementSpec",
    "LatticeSpec",
    "ScenarioSpec",
    "Scenario",
    "load_scenario",
    "FeedbackController",
    "EnvelopeController",
    "OrbitController",
    "controllers_from_spec",
    "run_sweep",
    "expand_axes",
    "load_sweep",
    "SweepResult",
]
