"""Stage checkpointing for the end-to-end pipelines.

The paper's pipeline is a chain of expensive *programs* (simulate,
partition, extract, render); a killed run should not pay for finished
stages twice.  A :class:`Checkpoint` is a directory holding

- ``manifest.json`` -- which stages (and per-frame steps within a
  stage) have completed, written atomically after every completion so
  a kill at any instant leaves a readable manifest;
- the stage artifacts themselves, saved by the pipeline code through
  the package's (atomic) on-disk formats.

:func:`repro.core.pipeline.beam_pipeline` and
:func:`~repro.core.pipeline.fieldline_pipeline` accept
``checkpoint_dir=...``; on re-run they skip completed stages by
loading the artifacts, bumping ``checkpoint_stages_resumed`` /
``checkpoint_steps_resumed`` tracer counters so resumption is visible
in a trace report.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.atomic import atomic_write_bytes
from repro.core.errors import FormatError

__all__ = ["Checkpoint"]

MANIFEST_VERSION = 1


class Checkpoint:
    """A resumable record of pipeline progress in one directory."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / "manifest.json"
        self._manifest = {"version": MANIFEST_VERSION, "stages": {}}
        if self.manifest_path.exists():
            try:
                data = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise FormatError(
                    f"{self.manifest_path}: unreadable checkpoint manifest ({exc})"
                ) from exc
            if data.get("version") != MANIFEST_VERSION:
                raise FormatError(
                    f"{self.manifest_path}: unsupported manifest version "
                    f"{data.get('version')!r}"
                )
            self._manifest = data

    # ------------------------------------------------------------------
    def path(self, name: str) -> Path:
        """Location for a stage artifact inside the checkpoint."""
        return self.directory / name

    def _stage(self, stage: str) -> dict:
        return self._manifest["stages"].setdefault(
            stage, {"done": False, "steps": [], "meta": {}}
        )

    def _flush(self) -> None:
        atomic_write_bytes(
            self.manifest_path,
            json.dumps(self._manifest, indent=2, sort_keys=True).encode(),
        )

    # ------------------------------------------------------------------
    def done(self, stage: str) -> bool:
        """Has the whole stage completed?"""
        return bool(self._manifest["stages"].get(stage, {}).get("done"))

    def mark_done(self, stage: str, **meta) -> None:
        """Record a stage as complete (with optional metadata)."""
        entry = self._stage(stage)
        entry["done"] = True
        entry["meta"].update(meta)
        self._flush()

    def record_step(self, stage: str, step: int) -> None:
        """Record one completed per-frame step within a stage."""
        entry = self._stage(stage)
        if int(step) not in entry["steps"]:
            entry["steps"].append(int(step))
            self._flush()

    def has_step(self, stage: str, step: int) -> bool:
        """Was this per-frame step already completed?"""
        return int(step) in self._manifest["stages"].get(stage, {}).get("steps", [])

    def steps(self, stage: str) -> list:
        """Completed step indices of a stage, in completion order."""
        return list(self._manifest["stages"].get(stage, {}).get("steps", []))

    def meta(self, stage: str) -> dict:
        """Metadata recorded at :meth:`mark_done`."""
        return dict(self._manifest["stages"].get(stage, {}).get("meta", {}))
