"""The LOD hierarchy: deterministic nested subsamples + density mips.

The properties the progressive stream leans on are all provable at
this layer, without a server in the loop:

- the build is deterministic (bit-identical side files on rebuild),
- per node, level l+1's sample is a prefix of level l's permutation
  (nested: refining never re-sends a particle),
- base + all deltas cover every particle exactly once,
- mip 0 divided by the cell volume is *bitwise* the flat extraction
  volume at the mip base resolution,
- the manifest round-trips (v2) and v1 stores still open (lod None).
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.errors import FormatError
from repro.core.store import STORE_VERSION, attach_lod_manifest
from repro.octree.extraction import extract
from repro.octree.lod import LodHierarchy, build_lod, node_centers
from repro.octree.stream_partition import PartitionedStore, partition_store


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(77)
    core = rng.normal(0.0, 0.3, (20_000, 6))
    halo = rng.normal(0.0, 2.0, (2_000, 6))
    return np.vstack([core, halo])


@pytest.fixture(scope="module")
def pstore(tmp_path_factory, particles):
    ps = partition_store(
        particles, tmp_path_factory.mktemp("lod") / "store", "xyz",
        max_level=5, capacity=64, step=3,
    )
    build_lod(ps, levels=2, ratio=4, seed=9, mip_base=32, mip_levels=3)
    return ps


def _side_file_hashes(ps):
    out = {}
    for name in sorted(ps.lod._files):
        out[name] = hashlib.md5((ps.directory / name).read_bytes()).hexdigest()
    return out


class TestBuild:
    def test_rebuild_is_bit_identical(self, tmp_path, particles, pstore):
        ps2 = partition_store(
            particles, tmp_path / "store", "xyz", max_level=5, capacity=64, step=3
        )
        build_lod(ps2, levels=2, ratio=4, seed=9, mip_base=32, mip_levels=3)
        assert _side_file_hashes(ps2) == _side_file_hashes(pstore)

    def test_samples_match_seeded_permutations(self, pstore):
        """Per node, the stored rows are exactly the documented
        ``default_rng([seed, node]).permutation`` prefix slices."""
        lod = pstore.lod
        starts = pstore.nodes["start"]
        counts = pstore.nodes["count"]
        for j in (0, 1, len(pstore.nodes) // 2, len(pstore.nodes) - 1):
            n = int(counts[j])
            perm = np.random.default_rng([9, j]).permutation(n)
            sizes = [max(1, -(-n // 4**l)) for l in range(lod.levels + 1)]
            base_rows, _ = lod.base(j + 1)
            got = base_rows[int(lod.index[lod.levels, j]):]
            expect = np.sort(perm[: sizes[lod.levels]]) + starts[j]
            assert np.array_equal(got, expect)
            for level in range(1, lod.levels):
                rows, _, _ = lod.delta(level, np.array([j]))
                expect = np.sort(perm[sizes[level + 1]: sizes[level]]) + starts[j]
                assert np.array_equal(rows, expect)

    def test_base_plus_deltas_cover_every_row_once(self, pstore):
        lod = pstore.lod
        n = len(pstore.nodes)
        all_ids = np.arange(n)
        rows = [lod.base(n)[0]]
        for level in range(lod.levels):
            rows.append(lod.delta(level, all_ids)[0])
        merged = np.sort(np.concatenate(rows))
        assert np.array_equal(merged, np.arange(pstore.n_particles))

    def test_nested_levels(self, pstore):
        """Each level's cumulative sample contains the coarser ones."""
        lod = pstore.lod
        n = len(pstore.nodes)
        acc = set(lod.base(n)[0].tolist())
        for level in range(lod.levels - 1, -1, -1):
            delta_rows = lod.delta(level, np.arange(n))[0]
            assert not acc.intersection(delta_rows.tolist())
            acc.update(delta_rows.tolist())
        assert len(acc) == pstore.n_particles

    def test_delta_points_match_flat_conversion(self, pstore):
        """Wire-ready deltas use the same elementwise f4 casts as the
        flat extraction path."""
        lod = pstore.lod
        ids = np.array([0, 3, 5])
        rows, pts, dens = lod.delta_points(1, ids)
        raw = pstore.store.to_array()[rows]
        assert np.array_equal(pts, raw[:, list(pstore.columns)].astype(np.float32))
        sizes = lod.level_sizes(1)[ids]
        expect = np.repeat(pstore.nodes["density"][ids], sizes).astype(np.float32)
        assert np.array_equal(dens, expect)

    def test_validation(self, pstore):
        with pytest.raises(ValueError):
            build_lod(pstore, levels=0)
        with pytest.raises(ValueError):
            build_lod(pstore, ratio=1)
        with pytest.raises(ValueError):
            build_lod(pstore, mip_base=48)  # not a power of two
        with pytest.raises(ValueError):
            build_lod(pstore, mip_base=4)  # below the floor


class TestMips:
    def test_mip0_is_bitwise_the_extraction_volume(self, pstore):
        thr = float(np.percentile(pstore.nodes["density"], 60))
        hf = extract(pstore.to_frame(), thr, volume_resolution=32)
        exact = pstore.lod.exact_volume(32)
        assert exact.dtype == np.float32
        assert np.array_equal(exact, hf.volume)

    def test_pyramid_preserves_mass(self, pstore):
        lod = pstore.lod
        m0 = lod.mip(0)
        for k in range(1, lod.mip_levels):
            mk = lod.mip(k)
            assert mk.shape == (32 >> k,) * 3
            assert mk.sum() == pytest.approx(m0.sum())

    def test_exact_volume_only_at_mip_base(self, pstore):
        assert pstore.lod.exact_volume(48) is None
        assert pstore.lod.exact_volume(64) is None

    def test_coarse_volume_shape_and_dtype(self, pstore):
        v = pstore.lod.coarse_volume(48)
        assert v.shape == (48, 48, 48) and v.dtype == np.float32

    def test_amr_fed_pyramid_conserves_mass(self, tmp_path, particles):
        """build_lod(amr=...) pools AMR brick counts into mip 0 instead
        of re-depositing: every particle is still counted exactly once,
        and the pooled pyramid keeps that mass at every level."""
        from repro.octree.amr import build_amr

        ps = partition_store(
            particles, tmp_path / "amrstore", "xyz",
            max_level=5, capacity=64, step=3,
        )
        amr = build_amr(
            ps.to_frame(), bricks=8, brick_cells=4, max_refine=1,
            refine_budget=256,
        )
        assert amr.n_refined > 0  # the pool really mixes brick levels
        lod = build_lod(
            ps, levels=2, ratio=4, seed=9, mip_base=32, mip_levels=3,
            amr=amr,
        )
        m0 = lod.mip(0)
        assert m0.shape == (32, 32, 32)
        assert m0.sum() == pytest.approx(len(particles))
        for k in range(1, lod.mip_levels):
            assert lod.mip(k).sum() == pytest.approx(m0.sum())
        # the pooled mip still serves the progressive first frame
        v = lod.coarse_volume(32)
        assert v.shape == (32, 32, 32) and np.all(np.isfinite(v))


class TestSchedule:
    def test_deterministic_and_complete(self, pstore):
        lod = pstore.lod
        n = len(pstore.nodes)
        eye = pstore.hi * 2.0
        a = lod.schedule(n, eye, unit_points=512)
        b = lod.schedule(n, eye, unit_points=512)
        assert len(a) == len(b)
        for (la, ia), (lb, ib) in zip(a, b):
            assert la == lb and np.array_equal(ia, ib)
        # every non-empty (level, node) appears exactly once
        seen = set()
        for level, ids in a:
            sizes = lod.level_sizes(level, n)[ids]
            assert (sizes > 0).all()
            for j in ids:
                key = (level, int(j))
                assert key not in seen
                seen.add(key)
        expect = {
            (level, j)
            for level in range(lod.levels)
            for j in np.flatnonzero(lod.level_sizes(level, n))
        }
        assert seen == expect

    def test_units_respect_point_budget(self, pstore):
        lod = pstore.lod
        n = len(pstore.nodes)
        for level, ids in lod.schedule(n, pstore.hi, unit_points=256):
            sizes = lod.level_sizes(level, n)[ids]
            assert len(ids) == 1 or sizes.sum() <= 256

    def test_coarser_levels_lead_at_equal_distance(self, pstore):
        """Priority scales with ratio**level: a node's level-1 delta is
        never scheduled after its own level-0 delta."""
        lod = pstore.lod
        n = len(pstore.nodes)
        pos = {}
        for u, (level, ids) in enumerate(lod.schedule(n, pstore.hi * 3)):
            for j in ids:
                pos[(level, int(j))] = u
        for (level, j), u in pos.items():
            finer = pos.get((level - 1, j))
            if finer is not None:
                assert u < finer

    def test_empty_prefix(self, pstore):
        assert pstore.lod.schedule(0, pstore.hi) == []

    def test_node_centers_inside_bounds(self, pstore):
        centers, diag = node_centers(pstore.nodes, pstore.lo, pstore.hi)
        assert (centers >= pstore.lo - 1e-9).all()
        assert (centers <= pstore.hi + 1e-9).all()
        assert (diag > 0).all()


class TestManifest:
    def test_manifest_is_v2_with_lod_section(self, pstore):
        manifest = json.loads((pstore.directory / "store.json").read_text())
        assert manifest["version"] == STORE_VERSION == 2
        lod = manifest["lod"]
        assert lod["seed"] == 9 and lod["ratio"] == 4 and lod["levels"] == 2
        for entry in lod["files"].values():
            assert set(entry) == {"bytes", "crc32"}

    def test_reopen_from_disk(self, pstore):
        ps2 = PartitionedStore.open(pstore.directory)
        assert ps2.lod is not None
        assert ps2.lod.nbytes() == pstore.lod.nbytes()
        n = len(ps2.nodes)
        assert np.array_equal(ps2.lod.base(n)[0], pstore.lod.base(n)[0])

    def test_v1_store_opens_without_lod(self, tmp_path, particles):
        ps = partition_store(
            particles, tmp_path / "store", "xyz", max_level=4, capacity=128, step=3
        )
        path = ps.directory / "store.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 1
        manifest.pop("lod", None)
        path.write_text(json.dumps(manifest))
        ps2 = PartitionedStore.open(ps.directory)
        assert ps2.lod is None

    def test_unsupported_version_rejected(self, tmp_path, particles):
        ps = partition_store(
            particles, tmp_path / "store", "xyz", max_level=4, capacity=128, step=3
        )
        path = ps.directory / "store.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 3
        path.write_text(json.dumps(manifest))
        with pytest.raises(FormatError):
            PartitionedStore.open(ps.directory)

    def test_detach_lod(self, tmp_path, particles):
        ps = partition_store(
            particles, tmp_path / "store", "xyz", max_level=4, capacity=128, step=3
        )
        build_lod(ps, levels=1, ratio=4, mip_base=16, mip_levels=1)
        attach_lod_manifest(ps.directory, None)
        ps2 = PartitionedStore.open(ps.directory)
        assert ps2.lod is None

    def test_corrupt_index_detected(self, tmp_path, particles):
        ps = partition_store(
            particles, tmp_path / "store", "xyz", max_level=4, capacity=128, step=3
        )
        build_lod(ps, levels=1, ratio=4, mip_base=16, mip_levels=1)
        path = ps.directory / "lod_index.bin"
        raw = bytearray(path.read_bytes())
        raw[8] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError):
            LodHierarchy.open(PartitionedStore.open(ps.directory))


class TestGatherRows:
    def test_matches_to_array(self, pstore):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, pstore.n_particles, 500)
        got = pstore.store.gather_rows(rows)
        assert np.array_equal(got, pstore.store.to_array()[rows])

    def test_preserves_caller_order_and_duplicates(self, pstore):
        rows = np.array([10, 3, 10, 0, pstore.n_particles - 1])
        got = pstore.store.gather_rows(rows)
        assert np.array_equal(got, pstore.store.to_array()[rows])

    def test_out_of_range_raises(self, pstore):
        with pytest.raises(IndexError):
            pstore.store.gather_rows(np.array([pstore.n_particles]))
        with pytest.raises(IndexError):
            pstore.store.gather_rows(np.array([-1]))

    def test_empty(self, pstore):
        assert pstore.store.gather_rows(np.empty(0, np.int64)).shape == (0, 6)
