"""Volume rendering: trilinear sampling, depth ranges, and the mixed
volume + point compositor that implements hybrid rendering."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.points import point_fragments
from repro.render.volume import (
    render_mixed,
    render_volume,
    trilinear_sample,
    volume_depth_range,
)


@pytest.fixture
def cam():
    return Camera.fit_bounds([-1, -1, -1], [1, 1, 1], width=48, height=48)


@pytest.fixture
def blob_volume():
    g = np.linspace(-1, 1, 16)
    x, y, z = np.meshgrid(g, g, g, indexing="ij")
    dens = np.exp(-(x**2 + y**2 + z**2) * 4)
    rgba = np.zeros(dens.shape + (4,))
    rgba[..., 0] = 1.0
    rgba[..., 3] = dens * 0.3
    return rgba


class TestTrilinearSample:
    def test_exact_at_texel_centers(self):
        vol = np.arange(8.0).reshape(2, 2, 2)
        # texel centers at 0.25 / 0.75 per axis for a 2-wide volume
        c = np.array([[0.25, 0.25, 0.25], [0.75, 0.75, 0.75]])
        out = trilinear_sample(vol, c)
        assert out[0] == pytest.approx(vol[0, 0, 0])
        assert out[1] == pytest.approx(vol[1, 1, 1])

    def test_midpoint_average(self):
        vol = np.zeros((2, 1, 1))
        vol[1] = 1.0
        out = trilinear_sample(vol, np.array([[0.5, 0.5, 0.5]]))
        assert out[0] == pytest.approx(0.5)

    def test_outside_is_zero(self):
        vol = np.ones((4, 4, 4))
        out = trilinear_sample(vol, np.array([[1.5, 0.5, 0.5], [-0.1, 0.5, 0.5]]))
        assert np.all(out == 0.0)

    def test_vector_volume(self):
        vol = np.ones((3, 3, 3, 4))
        out = trilinear_sample(vol, np.array([[0.5, 0.5, 0.5]]))
        assert out.shape == (1, 4)
        assert np.allclose(out, 1.0)

    def test_constant_volume_interpolates_constant(self, rng):
        vol = np.full((5, 6, 7), 3.25)
        pts = rng.uniform(0.05, 0.95, (100, 3))
        assert np.allclose(trilinear_sample(vol, pts), 3.25)


class TestDepthRange:
    def test_range_brackets_box(self, cam):
        d0, d1 = volume_depth_range(cam, np.array([-1.0, -1, -1]), np.array([1.0, 1, 1]))
        dist = np.linalg.norm(cam.eye)
        assert d0 < dist < d1

    def test_degenerate_behind_camera(self):
        cam = Camera(eye=[0, 0, -5], target=[0, 0, -10])
        d0, d1 = volume_depth_range(cam, np.array([10.0, 10, 10]), np.array([11.0, 11, 11]))
        assert d1 <= d0 or d0 >= cam.near  # no crash; callers handle empties


class TestRenderVolume:
    def test_blob_renders_centered(self, cam, blob_volume):
        fb = render_volume(cam, blob_volume, [-1, -1, -1], [1, 1, 1], n_slices=24)
        img = fb.to_rgb8()
        assert img[24, 24].sum() > img[2, 2].sum()

    def test_more_slices_converge(self, cam, blob_volume):
        a = render_volume(cam, blob_volume, [-1, -1, -1], [1, 1, 1], n_slices=32).rgba
        b = render_volume(cam, blob_volume, [-1, -1, -1], [1, 1, 1], n_slices=64).rgba
        c = render_volume(cam, blob_volume, [-1, -1, -1], [1, 1, 1], n_slices=128).rgba
        # 64 vs 128 must be closer than 32 vs 128 (opacity correction works)
        assert np.abs(b - c).mean() < np.abs(a - c).mean()

    def test_empty_volume_transparent(self, cam):
        vol = np.zeros((8, 8, 8, 4))
        fb = render_volume(cam, vol, [-1, -1, -1], [1, 1, 1], n_slices=16)
        assert np.all(fb.to_rgb8() == 0)


class TestRenderMixed:
    def test_point_behind_volume_occluded(self, cam):
        # fully opaque red wall in front of a green point
        vol = np.zeros((4, 4, 4, 4))
        vol[..., 0] = 1.0
        vol[..., 3] = 0.999
        frag = point_fragments(cam, np.array([[0.0, 0.0, 0.0]]), np.array([0.0, 1.0, 0.0, 1.0]))
        fb = render_mixed(cam, vol, [-1, -1, -1], [1, 1, 1], point_fragments=frag, n_slices=16)
        img = fb.to_rgb8()
        center = img[24, 24]
        assert center[0] > 200 and center[1] < 100  # red wins

    def test_point_in_front_of_volume_visible(self, cam):
        vol = np.zeros((4, 4, 4, 4))
        vol[..., 0] = 1.0
        vol[..., 3] = 0.999
        # point between the eye and the volume
        toward_eye = cam.eye / np.linalg.norm(cam.eye)
        p = toward_eye * (np.linalg.norm(cam.eye) - 1.3)  # just outside the box
        frag = point_fragments(cam, p[None], np.array([0.0, 1.0, 0.0, 1.0]))
        fb = render_mixed(cam, vol, [-1, -1, -1], [1, 1, 1], point_fragments=frag, n_slices=16)
        pix, _, _ = frag
        iy, ix = divmod(int(pix[0]), cam.width)
        assert fb.to_rgb8()[iy, ix][1] > 150  # green point survives

    def test_no_volume_points_only(self, cam):
        frag = point_fragments(cam, np.array([[0.0, 0.0, 0.0]]), np.array([1.0, 1.0, 1.0, 1.0]))
        fb = render_mixed(cam, None, [-1, -1, -1], [1, 1, 1], point_fragments=frag)
        assert fb.to_rgb8().sum() > 0


class TestRenderMIP:
    def test_mip_shows_max_not_accumulation(self, cam):
        """MIP of two blobs along one ray equals the brighter blob, not
        their sum."""
        from repro.render.volume import render_volume_mip

        vol = np.zeros((16, 16, 16))
        vol[3:6, 7:10, 7:10] = 1.0    # two blocks on roughly the same rays
        vol[11:14, 7:10, 7:10] = 0.5
        fb = render_volume_mip(cam, vol, [-1, -1, -1], [1, 1, 1], n_samples=96)
        # brightest pixel maps to the max sample (~1.0), never the sum (1.5)
        assert fb.rgba[..., 3].max() <= 1.0
        assert 0.85 <= fb.rgba[..., :3].max() <= 1.0

    def test_mip_empty_volume(self, cam):
        from repro.render.volume import render_volume_mip

        fb = render_volume_mip(cam, np.zeros((4, 4, 4)), [-1, -1, -1], [1, 1, 1])
        assert fb.to_rgb8().sum() == 0

    def test_mip_with_colormap(self, cam):
        from repro.render.colormap import get_colormap
        from repro.render.volume import render_volume_mip

        vol = np.zeros((8, 8, 8))
        vol[4, 4, 4] = 2.0
        fb = render_volume_mip(
            cam, vol, [-1, -1, -1], [1, 1, 1], colormap=get_colormap("fire")
        )
        img = fb.to_rgb8()
        assert img.sum() > 0
