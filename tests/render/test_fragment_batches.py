"""Per-shard fragment batches composite identically to one stream."""

import numpy as np
import pytest

from repro.hybrid.renderer import HybridRenderer
from repro.render.camera import Camera
from repro.render.points import point_fragments
from repro.render.volume import _merge_fragment_batches, render_mixed


@pytest.fixture(scope="module")
def camera():
    return Camera.fit_bounds([-1, -1, -1], [1, 1, 1], width=96, height=96)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(5)
    pos = rng.uniform(-0.9, 0.9, (4_000, 3))
    rgba = np.concatenate(
        [rng.uniform(0.1, 1.0, (4_000, 3)), np.full((4_000, 1), 0.4)], axis=1
    )
    return pos, rgba


class TestMergeFragmentBatches:
    def test_merge_preserves_stream_order(self, camera, cloud):
        pos, rgba = cloud
        whole = point_fragments(camera, pos, rgba)
        parts = [
            point_fragments(camera, pos[a : a + 1000], rgba[a : a + 1000])
            for a in range(0, len(pos), 1000)
        ]
        merged = _merge_fragment_batches(parts)
        for got, want in zip(merged, whole):
            assert np.array_equal(got, want)

    def test_empty_and_none_batches_dropped(self, camera, cloud):
        pos, rgba = cloud
        whole = point_fragments(camera, pos, rgba)
        merged = _merge_fragment_batches([None, whole, (np.empty(0, int),) * 3])
        for got, want in zip(merged, whole):
            assert np.array_equal(got, want)

    def test_all_empty_is_none(self):
        assert _merge_fragment_batches([]) is None
        assert _merge_fragment_batches([None, None]) is None


class TestEmptyBatches:
    def test_all_empty_batches_render_like_no_points(self, camera, cloud):
        """A batch list that merges to nothing must produce exactly the
        no-points image -- the empty-shard regression."""
        empty = point_fragments(camera, np.empty((0, 3)), np.empty((0, 4)))
        without = render_mixed(camera, None, [-1] * 3, [1] * 3)
        with_empties = render_mixed(
            camera, None, [-1] * 3, [1] * 3,
            point_fragments=[None, empty, (np.empty(0, int),) * 3],
        )
        assert np.array_equal(without.rgba, with_empties.rgba)
        assert np.array_equal(without.depth, with_empties.depth)

    def test_empty_point_set_yields_typed_empty_stream(self, camera):
        """point_fragments on zero points returns (0,)/(0, 4)-shaped
        arrays, never an atleast_2d (1, 0) artifact."""
        pix, dep, rgba = point_fragments(
            camera, np.empty((0, 3)), np.empty((0, 4))
        )
        assert pix.shape == (0,)
        assert dep.shape == (0,)
        assert rgba.shape == (0, 4)
        # and a list-of-3-arrays positional form, the historical caller
        pix2, dep2, rgba2 = point_fragments(camera, [], np.empty((0, 4)))
        assert pix2.shape == (0,)

    def test_interleaved_empty_batches_identical(self, camera, cloud):
        pos, rgba = cloud
        whole = point_fragments(camera, pos, rgba)
        empty = point_fragments(camera, np.empty((0, 3)), np.empty((0, 4)))
        a = render_mixed(camera, None, [-1] * 3, [1] * 3, point_fragments=whole)
        b = render_mixed(
            camera, None, [-1] * 3, [1] * 3,
            point_fragments=[empty, whole, empty],
        )
        assert np.array_equal(a.rgba, b.rgba)


class TestBatchedRendering:
    def test_points_only_image_identical(self, camera, cloud):
        pos, rgba = cloud
        whole = point_fragments(camera, pos, rgba)
        parts = [
            point_fragments(camera, pos[a : a + 700], rgba[a : a + 700])
            for a in range(0, len(pos), 700)
        ]
        a = render_mixed(camera, None, [-1] * 3, [1] * 3, point_fragments=whole)
        b = render_mixed(camera, None, [-1] * 3, [1] * 3, point_fragments=parts)
        assert np.array_equal(a.rgba, b.rgba)

    def test_mixed_image_identical(self, camera, cloud, hybrid_frame):
        renderer = HybridRenderer(n_slices=32)
        batched = HybridRenderer(n_slices=32, point_batch_size=500)
        cam = Camera.fit_bounds(
            hybrid_frame.lo, hybrid_frame.hi, width=96, height=96
        )
        a = renderer.render(hybrid_frame, camera=cam)
        b = batched.render(hybrid_frame, camera=cam)
        assert np.array_equal(a.rgba, b.rgba)

    def test_point_part_identical(self, hybrid_frame):
        cam = Camera.fit_bounds(hybrid_frame.lo, hybrid_frame.hi, width=80, height=80)
        a = HybridRenderer().render_point_part(hybrid_frame, camera=cam)
        b = HybridRenderer(point_batch_size=333).render_point_part(
            hybrid_frame, camera=cam
        )
        assert np.array_equal(a.rgba, b.rgba)

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            HybridRenderer(point_batch_size=0)
